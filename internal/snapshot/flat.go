// The v2 "flat" snapshot format: an offset-indexed, page-aligned,
// little-endian section layout built to be mmap'd and queried in place.
//
// Where the v1 codec varint-packs everything into one stream that must be
// decoded front to back, v2 puts a fixed-size directory at the front of
// the file and lays every hot read-side artifact out as a fixed-width
// array the reader can view through unsafe.Slice without copying:
//
//	offset 0      magic "RPSNAP2\n"
//	offset 8      u16 version (=2), u16 reserved (=0)
//	offset 12     u32 section count n
//	offset 16     n × 48-byte directory entries:
//	                name [24]byte (NUL-padded)
//	                off  u64  — absolute file offset, 64-byte aligned
//	                len  u64  — payload length in bytes
//	                crc  u32  — CRC-32 (IEEE) of the payload
//	                pad  u32  (=0)
//	offset 16+48n u32 CRC-32 (IEEE) of bytes [0, 16+48n)
//	...           zero padding to the next 4096-byte boundary
//	payloads      each starting on a 64-byte boundary, zero-padded between
//
// All integers are little-endian. Array sections carry raw fixed-width
// elements (f64 bit images, u32/i32) with no per-element framing, so a
// page-aligned mmap of the file yields correctly-aligned slices for free.
// The pointer-rich structures (the world graph, the dataset entry table)
// keep the v1 varint payloads — the current codec stays the writer-side
// canonical form — while the artifacts the query hot paths touch (the
// dense AS-id plane, the all-transit series caches, the cone tables, the
// spread observation and ground-truth tables) get flat sections.
//
// Attach (attach.go) validates only the header and directory up front;
// each section's CRC is verified the first time the section is
// materialized, keeping attach time independent of file size.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/netip"
	"os"
	"path/filepath"
	"time"
	"unsafe"

	"remotepeering/internal/lg"
)

// magic2 identifies a v2 flat snapshot file.
var magic2 = []byte("RPSNAP2\n")

// FlatVersion is the flat format's version. Attach rejects larger
// versions; v1 files are a different magic entirely (use Load for those).
const FlatVersion uint16 = 2

// Flat section names. The world/dataset/spread.cfg payloads reuse the v1
// varint encodings verbatim; the rest are fixed-width arrays.
const (
	flatWorld      = "world"       // v1 varint world payload
	flatDataset    = "dataset"     // v1 varint dataset payload
	flatASNs       = "asn.ids"     // u32[] dense-id → ASN plane, ascending
	flatSeriesIn   = "series.in"   // f64[] all-transit inbound series
	flatSeriesOut  = "series.out"  // f64[] all-transit outbound series
	flatConeIDs    = "cones.ids"   // i32[] dense ids with persisted cone rows
	flatConeOffs   = "cones.offs"  // u32[len(ids)+1] prefix offsets into cones.data
	flatConeData   = "cones.data"  // i32[] concatenated cone rows
	flatSpreadCfg  = "spread.cfg"  // v1 varint seed+campaign+detector config
	flatObsStrs    = "obs.strs"    // v1 varint string table (acronyms, families)
	flatObsRows    = "obs.rows"    // 48-byte fixed observation rows
	flatTruthIXPs  = "truth.ixps"  // i32[] studied-IXP indices, ascending
	flatTruthOffs  = "truth.offs"  // u32[len(ixps)+1] prefix offsets into truth.addrs
	flatTruthAddrs = "truth.addrs" // 20-byte fixed address rows
	flatTick       = "tick"        // JSON TickState (evolution layer)
)

const (
	flatHeaderSize  = 16
	flatDirEntSize  = 48
	flatNameSize    = 24
	flatPayloadBase = 4096 // first payload starts on a page boundary
	flatAlign       = 64   // every payload starts on a cache-line boundary
)

// obsRowSize is the fixed width of one observation row in obs.rows:
//
//	offset 0   i64 sentAt (ns)
//	offset 8   i64 rtt (ns)
//	offset 16  [16]byte target address bytes (leading ipLen significant)
//	offset 32  i32 ixpIndex
//	offset 36  u32 acronym string-table index
//	offset 40  u32 family string-table index
//	offset 44  u8  ttl
//	offset 45  u8  timedOut (0/1)
//	offset 46  u8  ipLen (0, 4, or 16 — netip.Addr.MarshalBinary lengths)
//	offset 47  u8  pad (=0)
const obsRowSize = 48

// truthRowSize is the fixed width of one ground-truth address row in
// truth.addrs: [16]byte address, u8 ipLen, [3]byte pad.
const truthRowSize = 20

// hostLittle reports whether this host stores integers little-endian —
// the precondition for viewing flat sections in place. Big-endian hosts
// fall back to copying decodes; the file bytes are identical either way.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// --- zero-copy array views ---
//
// Each view function interprets a section payload as a fixed-width array.
// When the host is little-endian and the payload is suitably aligned
// (guaranteed for mmap'd files: page-aligned base + 64-byte-aligned
// offsets), the returned slice aliases the underlying bytes — zero copies,
// zero allocations. Otherwise the elements are decoded into a fresh slice.
// A payload whose length is not a multiple of the element size is corrupt.

func viewF64(b []byte, section string) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: section %q length %d is not a multiple of 8", ErrCorrupt, section, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func viewU32(b []byte, section string) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: section %q length %d is not a multiple of 4", ErrCorrupt, section, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return nil, nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, nil
}

func viewI32(b []byte, section string) ([]int32, error) {
	u, err := viewU32(b, section)
	if err != nil || u == nil {
		return nil, err
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&u[0])), len(u)), nil
}

// --- flat array encoders (writer side) ---

func appendF64s(buf []byte, xs []float64) []byte {
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

func appendU32s(buf []byte, xs []uint32) []byte {
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, x)
	}
	return buf
}

func appendI32s(buf []byte, xs []int32) []byte {
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

// addrBytes returns a netip.Addr's canonical binary image (the same bytes
// netip.Addr.MarshalBinary yields: empty for the zero Addr, 4 for v4, 16
// for v6) for packing into fixed-width rows.
func addrBytes(a netip.Addr) []byte {
	b, err := a.MarshalBinary()
	if err != nil {
		return nil
	}
	return b
}

// decodeRowAddr rebuilds a netip.Addr from a fixed-width row's address
// field. ipLen must be one of MarshalBinary's lengths.
func decodeRowAddr(ip []byte, ipLen uint8) (netip.Addr, error) {
	switch ipLen {
	case 0:
		return netip.Addr{}, nil
	case 4, 16:
		var a netip.Addr
		if err := a.UnmarshalBinary(ip[:ipLen]); err != nil {
			return netip.Addr{}, fmt.Errorf("%w: bad address bytes: %v", ErrCorrupt, err)
		}
		return a, nil
	default:
		return netip.Addr{}, fmt.Errorf("%w: address length %d (want 0, 4, or 16)", ErrCorrupt, ipLen)
	}
}

// encodeObsRows packs the raw observation stream into fixed-width rows,
// interning acronym/family strings into table (first-appearance order,
// exactly like the v1 section).
func encodeObsRows(raw []lg.Observation, table *stringTable) []byte {
	buf := make([]byte, len(raw)*obsRowSize)
	for i := range raw {
		o := &raw[i]
		row := buf[i*obsRowSize:]
		binary.LittleEndian.PutUint64(row[0:], uint64(o.SentAt))
		binary.LittleEndian.PutUint64(row[8:], uint64(o.RTT))
		ip := addrBytes(o.Target)
		copy(row[16:32], ip)
		binary.LittleEndian.PutUint32(row[32:], uint32(int32(o.IXPIndex)))
		binary.LittleEndian.PutUint32(row[36:], uint32(table.ref(o.Acronym)))
		binary.LittleEndian.PutUint32(row[40:], uint32(table.ref(o.Family)))
		row[44] = o.TTL
		if o.TimedOut {
			row[45] = 1
		}
		row[46] = uint8(len(ip))
	}
	return buf
}

// decodeObsRows is encodeObsRows' inverse: one slice allocation for the
// whole stream, strings shared from the decoded table.
func decodeObsRows(b []byte, table []string) ([]lg.Observation, error) {
	if len(b)%obsRowSize != 0 {
		return nil, fmt.Errorf("%w: obs.rows length %d is not a multiple of %d", ErrCorrupt, len(b), obsRowSize)
	}
	raw := make([]lg.Observation, len(b)/obsRowSize)
	for i := range raw {
		row := b[i*obsRowSize:]
		o := &raw[i]
		o.SentAt = time.Duration(binary.LittleEndian.Uint64(row[0:]))
		o.RTT = time.Duration(binary.LittleEndian.Uint64(row[8:]))
		target, err := decodeRowAddr(row[16:32], row[46])
		if err != nil {
			return nil, err
		}
		o.Target = target
		o.IXPIndex = int(int32(binary.LittleEndian.Uint32(row[32:])))
		acr := binary.LittleEndian.Uint32(row[36:])
		fam := binary.LittleEndian.Uint32(row[40:])
		if uint64(acr) >= uint64(len(table)) || uint64(fam) >= uint64(len(table)) {
			return nil, fmt.Errorf("%w: obs.rows row %d references string %d/%d beyond table size %d",
				ErrCorrupt, i, acr, fam, len(table))
		}
		o.Acronym = table[acr]
		o.Family = table[fam]
		o.TTL = row[44]
		o.TimedOut = row[45] != 0
	}
	return raw, nil
}

// encodeTruthAddrs packs one IXP's remote-address list into fixed rows.
func encodeTruthAddrs(buf []byte, ips []netip.Addr) []byte {
	for _, a := range ips {
		row := make([]byte, truthRowSize)
		ip := addrBytes(a)
		copy(row[:16], ip)
		row[16] = uint8(len(ip))
		buf = append(buf, row...)
	}
	return buf
}

// decodeTruthAddrs unpacks rows [lo, hi) of truth.addrs.
func decodeTruthAddrs(b []byte, lo, hi uint32) ([]netip.Addr, error) {
	ips := make([]netip.Addr, 0, hi-lo)
	for r := lo; r < hi; r++ {
		row := b[int(r)*truthRowSize:]
		a, err := decodeRowAddr(row[:16], row[16])
		if err != nil {
			return nil, err
		}
		ips = append(ips, a)
	}
	return ips, nil
}

// --- writer ---

type flatSection struct {
	name    string
	payload []byte
}

// flatSections assembles the v2 section list for a snapshot, in the fixed
// file order. The world and dataset payloads are the v1 encodings; the
// hot artifacts are flattened.
func flatSections(s *Snapshot) ([]flatSection, error) {
	if s == nil || s.World == nil {
		return nil, fmt.Errorf("snapshot: nil snapshot or world")
	}
	secs := []flatSection{{flatWorld, encodeWorld(s.World)}}

	// The dense AS-id plane, u32 per id in ascending-id (= ascending ASN)
	// order — the attach path restores the index from this instead of
	// re-sorting the universe.
	asns := s.World.Graph.ASNs()
	plane := make([]byte, 0, 4*len(asns))
	for _, a := range asns {
		plane = binary.LittleEndian.AppendUint32(plane, uint32(a))
	}
	secs = append(secs, flatSection{flatASNs, plane})

	if s.Dataset != nil {
		secs = append(secs, flatSection{flatDataset, encodeDataset(s.Dataset)})
		if in, out, ok := s.Dataset.AllTransitSeriesCached(); ok {
			secs = append(secs,
				flatSection{flatSeriesIn, appendF64s(make([]byte, 0, 8*len(in)), in)},
				flatSection{flatSeriesOut, appendF64s(make([]byte, 0, 8*len(out)), out)})
		}
	}

	if s.Cones != nil {
		if ids, cones := s.Cones.Export(); len(ids) > 0 {
			offs := make([]uint32, 1, len(ids)+1)
			total := 0
			for _, row := range cones {
				total += len(row)
				offs = append(offs, uint32(total))
			}
			data := make([]byte, 0, 4*total)
			for _, row := range cones {
				data = appendI32s(data, row)
			}
			secs = append(secs,
				flatSection{flatConeIDs, appendI32s(make([]byte, 0, 4*len(ids)), ids)},
				flatSection{flatConeOffs, appendU32s(make([]byte, 0, 4*len(offs)), offs)},
				flatSection{flatConeData, data})
		}
	}

	if s.Spread != nil {
		var cfg enc
		encodeSpreadCfg(&cfg, s.Spread)
		var table stringTable
		rows := encodeObsRows(s.Spread.Raw, &table)
		var strs enc
		table.encode(&strs)

		ixps, remote := s.Spread.RemoteTruth()
		tixps := make([]byte, 0, 4*len(ixps))
		toffs := make([]uint32, 1, len(ixps)+1)
		var taddrs []byte
		total := 0
		for k, idx := range ixps {
			tixps = binary.LittleEndian.AppendUint32(tixps, uint32(int32(idx)))
			total += len(remote[k])
			toffs = append(toffs, uint32(total))
			taddrs = encodeTruthAddrs(taddrs, remote[k])
		}
		secs = append(secs,
			flatSection{flatSpreadCfg, cfg.buf},
			flatSection{flatObsStrs, strs.buf},
			flatSection{flatObsRows, rows},
			flatSection{flatTruthIXPs, tixps},
			flatSection{flatTruthOffs, appendU32s(make([]byte, 0, 4*len(toffs)), toffs)},
			flatSection{flatTruthAddrs, taddrs})
	}

	if s.Tick != nil {
		secs = append(secs, flatSection{flatTick, encodeTick(s.Tick)})
	}
	return secs, nil
}

// alignUp rounds n up to the next multiple of a (a power of two).
func alignUp(n, a int) int { return (n + a - 1) &^ (a - 1) }

// encodeFlat renders the complete v2 file image.
func encodeFlat(s *Snapshot) ([]byte, error) {
	secs, err := flatSections(s)
	if err != nil {
		return nil, err
	}
	dirEnd := flatHeaderSize + len(secs)*flatDirEntSize
	// Payloads start at the first page boundary past the directory (and
	// its trailing CRC), each aligned to 64 bytes.
	off := alignUp(dirEnd+4, flatPayloadBase)
	offs := make([]int, len(secs))
	for i, sec := range secs {
		offs[i] = off
		off = alignUp(off+len(sec.payload), flatAlign)
	}
	total := offs[len(offs)-1] + len(secs[len(secs)-1].payload)

	out := make([]byte, total)
	copy(out, magic2)
	binary.LittleEndian.PutUint16(out[8:], FlatVersion)
	binary.LittleEndian.PutUint32(out[12:], uint32(len(secs)))
	for i, sec := range secs {
		ent := out[flatHeaderSize+i*flatDirEntSize:]
		if len(sec.name) > flatNameSize {
			return nil, fmt.Errorf("snapshot: flat section name %q too long", sec.name)
		}
		copy(ent[:flatNameSize], sec.name)
		binary.LittleEndian.PutUint64(ent[flatNameSize:], uint64(offs[i]))
		binary.LittleEndian.PutUint64(ent[flatNameSize+8:], uint64(len(sec.payload)))
		binary.LittleEndian.PutUint32(ent[flatNameSize+16:], crc32.ChecksumIEEE(sec.payload))
		copy(out[offs[i]:], sec.payload)
	}
	binary.LittleEndian.PutUint32(out[dirEnd:], crc32.ChecksumIEEE(out[:dirEnd]))
	return out, nil
}

// WriteFlat encodes the snapshot in the v2 flat format and returns the
// file's SHA-256 content digest. The v1 codec (Save) remains the
// canonical writer form; WriteFlat is the serve-tier attach artifact.
func WriteFlat(w io.Writer, s *Snapshot) (digest string, err error) {
	out, err := encodeFlat(s)
	if err != nil {
		return "", err
	}
	digest = digestOf(out)
	if _, err := w.Write(out); err != nil {
		return "", err
	}
	return digest, nil
}

// SaveFlatFile writes the v2 flat snapshot atomically (temp file +
// rename) and returns its content digest.
func SaveFlatFile(path string, s *Snapshot) (digest string, err error) {
	out, err := encodeFlat(s)
	if err != nil {
		return "", err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-flat-*")
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return digestOf(out), nil
}

// SniffFlat reports whether the file at path starts with the v2 flat
// magic — the dispatch predicate for tools accepting either format.
func SniffFlat(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	var hdr [8]byte
	n, _ := io.ReadFull(f, hdr[:])
	return n == len(magic2) && string(hdr[:]) == string(magic2), nil
}

// Sniff reports which snapshot format the file at path carries: v1
// (read it with Load) or v2 flat (Attach). Both false means the file is
// not a snapshot at all — the catalog scanner uses that to skip foreign
// files instead of erroring on them.
func Sniff(path string) (v1, flat bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, false, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	var hdr [8]byte
	n, _ := io.ReadFull(f, hdr[:])
	if n != len(magic) {
		return false, false, nil
	}
	switch string(hdr[:]) {
	case string(magic):
		return true, false, nil
	case string(magic2):
		return false, true, nil
	}
	return false, false, nil
}

// DigestFile computes the file's content digest — the same hex SHA-256
// of the complete file image Save/Load/Attach stamp on a Snapshot — by
// streaming, without decoding or holding the file in memory. It is how
// the catalog names worlds it has not attached yet.
func DigestFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("snapshot: digest %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
