//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release function
// unmaps; the file descriptor itself can be closed immediately after
// mapping (the mapping persists). Empty files are never mapped — callers
// reject them before reaching here.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
