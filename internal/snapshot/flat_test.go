package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"remotepeering/internal/lg"
	"remotepeering/internal/netflow"
	"remotepeering/internal/offload"
	"remotepeering/internal/spread"
)

// flatImage renders s in the v2 flat format.
func flatImage(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteFlat(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// flatRoundTrip encodes s as a v2 image, attaches it, and materializes.
func flatRoundTrip(t testing.TB, s *Snapshot) *Snapshot {
	t.Helper()
	a, err := AttachBytes(flatImage(t, s))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// refixDirCRC recomputes the directory checksum after a test mutated the
// header or directory bytes, so the mutation under test is the one that
// trips, not the checksum.
func refixDirCRC(img []byte) {
	count := int(binary.LittleEndian.Uint32(img[12:]))
	dirEnd := flatHeaderSize + count*flatDirEntSize
	binary.LittleEndian.PutUint32(img[dirEnd:], crc32.ChecksumIEEE(img[:dirEnd]))
}

// TestFlatWorldRoundTrip pins the strongest guarantee for the v2 path:
// the materialized World is deeply equal to the saved one — including
// the index rebuilt from the persisted dense-id plane.
func TestFlatWorldRoundTrip(t *testing.T) {
	w := testWorld(t)
	got := flatRoundTrip(t, &Snapshot{World: w}).World
	got.Graph.ASNs()
	if !reflect.DeepEqual(w, got) {
		t.Fatal("attached world is not deeply equal to the saved world")
	}
}

// TestFlatFullRoundTrip drives every section group through the flat
// format at once and pins the analyses byte-for-byte against the live
// objects — the v2 counterpart of the per-artifact v1 tests.
func TestFlatFullRoundTrip(t *testing.T) {
	w := testWorld(t)
	ds, err := netflow.Collect(w, netflow.Config{Seed: 11, Intervals: 96})
	if err != nil {
		t.Fatal(err)
	}
	liveIn, liveOut := ds.SeriesTotal(nil) // warm the cache so it rides along
	cones := offload.NewConeCache()
	study, err := offload.NewStudyOptions(w, ds, offload.Options{Cones: cones})
	if err != nil {
		t.Fatal(err)
	}
	wantGreedy := study.Greedy(offload.GroupAll, 10)
	res, err := spread.Run(w, spread.Options{
		Seed: 5,
		IXPs: []int{0, 2},
		Campaign: lg.Config{
			Duration:   10 * 24 * time.Hour,
			PCHRounds:  4,
			RIPERounds: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	loaded := flatRoundTrip(t, &Snapshot{World: w, Dataset: ds, Cones: cones, Spread: res})

	lds := loaded.Dataset
	if lds == nil {
		t.Fatal("attached snapshot has no dataset")
	}
	if !reflect.DeepEqual(ds.Entries, lds.Entries) {
		t.Error("entries differ through the flat format")
	}
	gotIn, gotOut, ok := lds.AllTransitSeriesCached()
	if !ok {
		t.Fatal("attached dataset's series cache is cold despite the series sections")
	}
	if !reflect.DeepEqual(liveIn, gotIn) || !reflect.DeepEqual(liveOut, gotOut) {
		t.Error("flat series differ from the live synthesis")
	}

	if loaded.Cones == nil {
		t.Fatal("attached snapshot has no cone cache")
	}
	study2, err := offload.NewStudyOptions(loaded.World, lds, offload.Options{Cones: loaded.Cones})
	if err != nil {
		t.Fatal(err)
	}
	if got := study2.Greedy(offload.GroupAll, 10); !reflect.DeepEqual(wantGreedy, got) {
		t.Error("greedy expansion differs when primed from flat cones")
	}

	lres := loaded.Spread
	if lres == nil {
		t.Fatal("attached snapshot has no spread result")
	}
	if !reflect.DeepEqual(res.Raw, lres.Raw) {
		t.Error("raw observations differ through the flat format")
	}
	if !reflect.DeepEqual(res.Report, lres.Report) {
		t.Error("detector report differs through the flat format")
	}
	if res.Validation != lres.Validation {
		t.Errorf("validation differs: %+v vs %+v", res.Validation, lres.Validation)
	}
	for _, o := range res.Raw[:min(500, len(res.Raw))] {
		if res.Truth(o.IXPIndex, o.Target) != lres.Truth(o.IXPIndex, o.Target) {
			t.Fatalf("truth differs for IXP %d target %s", o.IXPIndex, o.Target)
		}
	}
}

// TestFlatDigestsAgree pins the digest semantics: WriteFlat, SaveFlatFile,
// and the materialized snapshot all name the same content digest — the
// serve tier's cache key is format-dependent but path-independent.
func TestFlatDigestsAgree(t *testing.T) {
	w := testWorld(t)
	s := &Snapshot{World: w}
	img := flatImage(t, s)
	var buf bytes.Buffer
	wDigest, err := WriteFlat(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "world.flat")
	fDigest, err := SaveFlatFile(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if wDigest != fDigest {
		t.Errorf("WriteFlat digest %s != SaveFlatFile digest %s", wDigest, fDigest)
	}
	a, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Size() != len(img) {
		t.Errorf("attached size %d, image size %d", a.Size(), len(img))
	}
	got, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != wDigest {
		t.Errorf("materialized digest %s != write digest %s", got.Digest, wDigest)
	}

	ok, err := SniffFlat(path)
	if err != nil || !ok {
		t.Errorf("SniffFlat(flat file) = %v, %v; want true", ok, err)
	}
	v1 := filepath.Join(t.TempDir(), "world.rpsnap")
	if err := SaveFile(v1, s); err != nil {
		t.Fatal(err)
	}
	ok, err = SniffFlat(v1)
	if err != nil || ok {
		t.Errorf("SniffFlat(v1 file) = %v, %v; want false", ok, err)
	}
}

// TestFlatIntegrityFailures pins the typed-error contract of the attach
// path: every structural corruption lands on the right sentinel and never
// panics, whether it is caught at attach (header/directory) or deferred
// to materialize (payload checksums).
func TestFlatIntegrityFailures(t *testing.T) {
	w := testWorld(t)
	good := flatImage(t, &Snapshot{World: w})

	attachErr := func(name string, img []byte, want error) {
		t.Helper()
		a, err := AttachBytes(img)
		if !errors.Is(err, want) {
			t.Errorf("%s: attach err = %v, want %v", name, err, want)
		}
		if a != nil {
			t.Errorf("%s: got a non-nil attachment alongside the error", name)
		}
	}
	materializeErr := func(name string, img []byte, want error) {
		t.Helper()
		a, err := AttachBytes(img)
		if err != nil {
			t.Errorf("%s: attach failed early: %v", name, err)
			return
		}
		if _, err := a.Snapshot(); !errors.Is(err, want) {
			t.Errorf("%s: materialize err = %v, want %v", name, err, want)
		}
	}

	attachErr("empty file", nil, ErrTruncated)
	attachErr("half a magic", good[:4], ErrTruncated)
	attachErr("header cut", good[:10], ErrTruncated)
	attachErr("directory cut", good[:flatHeaderSize+10], ErrTruncated)

	garbage := append([]byte("definitely not a snapshot file, "), good...)
	attachErr("text file", garbage, ErrBadMagic)

	// A v1 file handed to Attach is a version error with advice, not a
	// magic error — and a v2 file handed to Load is a magic error.
	var v1buf bytes.Buffer
	if err := Save(&v1buf, &Snapshot{World: w}); err != nil {
		t.Fatal(err)
	}
	attachErr("v1 file", v1buf.Bytes(), ErrVersion)
	if _, err := Load(bytes.NewReader(good)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("Load(v2 image) err = %v, want ErrBadMagic", err)
	}

	future := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(future[8:], FlatVersion+1)
	refixDirCRC(future)
	attachErr("future version", future, ErrVersion)

	dirFlip := append([]byte(nil), good...)
	dirFlip[flatHeaderSize+1] ^= 0x40 // inside the first entry's name
	attachErr("directory flip", dirFlip, ErrCorrupt)

	misaligned := append([]byte(nil), good...)
	off := binary.LittleEndian.Uint64(misaligned[flatHeaderSize+flatNameSize:])
	binary.LittleEndian.PutUint64(misaligned[flatHeaderSize+flatNameSize:], off+1)
	refixDirCRC(misaligned)
	attachErr("misaligned offset", misaligned, ErrCorrupt)

	oob := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(oob[flatHeaderSize+flatNameSize+8:], uint64(len(good))+1)
	refixDirCRC(oob)
	attachErr("section past EOF", oob, ErrTruncated)

	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(huge[flatHeaderSize+flatNameSize+8:], ^uint64(0)-8)
	refixDirCRC(huge)
	attachErr("near-2^64 section length", huge, ErrTruncated)

	// Payload corruption is deferred: attach succeeds, materialize trips
	// the section checksum.
	for _, at := range []int{flatPayloadBase + 3, len(good) - 10} {
		flipped := append([]byte(nil), good...)
		flipped[at] ^= 0x40
		materializeErr("payload flip", flipped, ErrCorrupt)
	}

	// Truncating mid-payload is caught at attach by the directory bounds.
	attachErr("payload cut", good[:len(good)-1], ErrTruncated)
}

// TestFlatUnknownSectionSkipped pins forward tolerance: an extra section
// a future writer might add is listed but ignored by materialize.
func TestFlatUnknownSectionSkipped(t *testing.T) {
	w := testWorld(t)
	good := flatImage(t, &Snapshot{World: w})

	// Rewrite the image with one extra unknown section appended: bump the
	// count, splice a directory entry, shift payload offsets.
	extra := []byte("future payload")
	count := int(binary.LittleEndian.Uint32(good[12:]))
	oldDirEnd := flatHeaderSize + count*flatDirEntSize
	newDirEnd := oldDirEnd + flatDirEntSize
	oldBase := alignUp(oldDirEnd+4, flatPayloadBase)
	newBase := alignUp(newDirEnd+4, flatPayloadBase)
	shift := newBase - oldBase

	img := make([]byte, 0, len(good)+shift+flatAlign+len(extra))
	img = append(img, good[:oldDirEnd]...)
	var ent [flatDirEntSize]byte
	copy(ent[:flatNameSize], "future.section")
	extraOff := alignUp(len(good)+shift, flatAlign)
	binary.LittleEndian.PutUint64(ent[flatNameSize:], uint64(extraOff))
	binary.LittleEndian.PutUint64(ent[flatNameSize+8:], uint64(len(extra)))
	binary.LittleEndian.PutUint32(ent[flatNameSize+16:], crc32.ChecksumIEEE(extra))
	img = append(img, ent[:]...)
	img = append(img, make([]byte, newBase-newDirEnd)...) // CRC slot + padding
	img = append(img, good[oldBase:]...)
	img = append(img, make([]byte, extraOff-(len(good)+shift))...)
	img = append(img, extra...)
	binary.LittleEndian.PutUint32(img[12:], uint32(count+1))
	for i := 0; i < count; i++ {
		entOff := flatHeaderSize + i*flatDirEntSize + flatNameSize
		off := binary.LittleEndian.Uint64(img[entOff:])
		binary.LittleEndian.PutUint64(img[entOff:], off+uint64(shift))
	}
	refixDirCRC(img)

	a, err := AttachBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range a.Sections() {
		if name == "future.section" {
			found = true
		}
	}
	if !found {
		t.Error("extra section not listed")
	}
	got, err := a.Snapshot()
	if err != nil {
		t.Fatalf("materialize with unknown section: %v", err)
	}
	got.World.Graph.ASNs()
	if !reflect.DeepEqual(w, got.World) {
		t.Error("world differs when an unknown section is present")
	}
}

// TestFlatClosedAttachment pins the use-after-close surface: materialize
// on a closed attachment errors instead of faulting, and Close is
// idempotent.
func TestFlatClosedAttachment(t *testing.T) {
	w := testWorld(t)
	path := filepath.Join(t.TempDir(), "world.flat")
	if _, err := SaveFlatFile(path, &Snapshot{World: w}); err != nil {
		t.Fatal(err)
	}
	a, err := Attach(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := a.Snapshot(); err == nil {
		t.Error("materialize after Close should fail")
	}
}
