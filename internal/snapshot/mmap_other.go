//go:build !unix

package snapshot

import (
	"io"
	"os"
)

// mapFile on platforms without syscall.Mmap reads the file into memory.
// Attach still validates lazily; only the zero-copy property is lost.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
