// Attach: the zero-copy read side of the v2 flat format. Attach maps a
// flat snapshot into the address space and validates only the fixed-size
// header and section directory — microseconds of work independent of file
// size — so a serve-tier worker can hold thousands of catalogued worlds
// "open" at negligible cost. The expensive part, materializing the
// pointer-rich *World and rehydrating the analyses, happens lazily on the
// first Snapshot() call, and the flat hot-path arrays (all-transit series,
// cone rows, the dense AS-id plane) are adopted as views over the mapping
// rather than copied. Scenario clones over an attached world stay
// copy-on-write: the ops' dirty-stage masks decide which sections a cell
// rebuilds, exactly as they do over a v1-loaded world.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"sync"

	"remotepeering/internal/asindex"
	"remotepeering/internal/offload"
	"remotepeering/internal/spread"
	"remotepeering/internal/topo"
)

// Attached is a flat snapshot mapped (or held) in memory. The zero value
// is not usable; obtain one from Attach or AttachBytes.
//
// Lifetime: the materialized Snapshot's series and cone tables alias the
// mapping, so Close must not be called while the Snapshot (or anything
// derived from it) is still in use. Long-lived processes (rpserve, the
// CLI tools) simply never close; tests close in cleanup, after their last
// use of the snapshot.
type Attached struct {
	data  []byte
	unmap func() error
	dir   []flatDirEnt

	once sync.Once
	snap *Snapshot
	err  error
}

type flatDirEnt struct {
	name string
	off  int
	n    int
	crc  uint32
}

// Attach maps the flat snapshot at path and validates its header and
// section directory. It does not read the section payloads: attach cost
// is O(directory), not O(file). All failure paths return typed errors
// (ErrBadMagic, ErrVersion, ErrTruncated, ErrCorrupt) — never a panic.
func Attach(path string) (*Attached, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return nil, fmt.Errorf("%w: empty file", ErrTruncated)
	}
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("snapshot: %s does not fit in memory", path)
	}
	data, unmap, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("snapshot: map %s: %w", path, err)
	}
	a, err := attach(data, unmap)
	if err != nil {
		unmap()
		return nil, err
	}
	return a, nil
}

// AttachBytes attaches an in-memory flat snapshot image (network
// transports, tests, fuzzing). The bytes are adopted and must not be
// mutated afterwards.
func AttachBytes(data []byte) (*Attached, error) {
	return attach(data, nil)
}

func attach(data []byte, unmap func() error) (*Attached, error) {
	if len(data) < len(magic2) {
		if bytes.HasPrefix(magic2, data) {
			return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrTruncated, len(data))
		}
		return nil, ErrBadMagic
	}
	if !bytes.Equal(data[:len(magic2)], magic2) {
		if bytes.Equal(data[:len(magic)], magic) {
			return nil, fmt.Errorf("%w: v1 snapshot (read it with Load, not Attach)", ErrVersion)
		}
		return nil, ErrBadMagic
	}
	if len(data) < flatHeaderSize {
		return nil, fmt.Errorf("%w: missing flat header", ErrTruncated)
	}
	ver := binary.LittleEndian.Uint16(data[8:])
	if ver > FlatVersion {
		return nil, fmt.Errorf("%w: file has flat version %d, this build reads ≤ %d", ErrVersion, ver, FlatVersion)
	}
	if ver < FlatVersion {
		return nil, fmt.Errorf("%w: impossible flat version %d", ErrCorrupt, ver)
	}
	count := int64(binary.LittleEndian.Uint32(data[12:]))
	dirEnd := int64(flatHeaderSize) + count*flatDirEntSize
	if dirEnd+4 > int64(len(data)) {
		return nil, fmt.Errorf("%w: directory of %d sections wants %d bytes, file has %d",
			ErrTruncated, count, dirEnd+4, len(data))
	}
	if got, want := crc32.ChecksumIEEE(data[:dirEnd]), binary.LittleEndian.Uint32(data[dirEnd:]); got != want {
		return nil, fmt.Errorf("%w: directory checksum mismatch", ErrCorrupt)
	}
	dir := make([]flatDirEnt, count)
	seen := make(map[string]bool, count)
	for i := range dir {
		ent := data[flatHeaderSize+i*flatDirEntSize:]
		name := string(bytes.TrimRight(ent[:flatNameSize], "\x00"))
		off := binary.LittleEndian.Uint64(ent[flatNameSize:])
		n := binary.LittleEndian.Uint64(ent[flatNameSize+8:])
		if name == "" {
			return nil, fmt.Errorf("%w: directory entry %d has an empty name", ErrCorrupt, i)
		}
		if seen[name] {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		seen[name] = true
		if off%flatAlign != 0 {
			return nil, fmt.Errorf("%w: section %q offset %d is not %d-byte aligned", ErrCorrupt, name, off, flatAlign)
		}
		// Overflow-safe bounds: compare in uint64 against the file size.
		if off > uint64(len(data)) || n > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %q wants [%d, %d+%d), file has %d bytes",
				ErrTruncated, name, off, off, n, len(data))
		}
		if off < uint64(dirEnd)+4 {
			return nil, fmt.Errorf("%w: section %q overlaps the directory", ErrCorrupt, name)
		}
		dir[i] = flatDirEnt{name: name, off: int(off), n: int(n), crc: binary.LittleEndian.Uint32(ent[flatNameSize+16:])}
	}
	return &Attached{data: data, unmap: unmap, dir: dir}, nil
}

// OpenFile reads a snapshot in whichever format the file carries: v1
// files go through LoadFile, v2 flat files are attached and materialized.
// For flat files the mapping is deliberately retained for the snapshot's
// lifetime (the materialized artifacts alias it); callers that need to
// unmap eagerly should use Attach directly and manage Close themselves.
func OpenFile(path string) (*Snapshot, error) {
	flat, err := SniffFlat(path)
	if err != nil {
		return nil, err
	}
	if !flat {
		return LoadFile(path)
	}
	a, err := Attach(path)
	if err != nil {
		return nil, err
	}
	s, err := a.Snapshot()
	if err != nil {
		a.Close()
		return nil, err
	}
	return s, nil
}

// Sections lists the attached file's section names in directory order.
func (a *Attached) Sections() []string {
	names := make([]string, len(a.dir))
	for i, e := range a.dir {
		names[i] = e.name
	}
	return names
}

// Size returns the mapped file size in bytes.
func (a *Attached) Size() int { return len(a.data) }

// Close releases the mapping. It must not be called while a Snapshot
// materialized from this attachment is still in use — the snapshot's
// series and cone tables alias the mapped memory.
func (a *Attached) Close() error {
	unmap := a.unmap
	a.unmap = nil
	a.data = nil
	if unmap != nil {
		return unmap()
	}
	return nil
}

// section returns the named payload, verifying its CRC — the lazy
// counterpart of the v1 reader's up-front sweep: a section is checked the
// first (and only) time materialization consumes it.
func (a *Attached) section(name string) ([]byte, bool, error) {
	for _, e := range a.dir {
		if e.name != name {
			continue
		}
		payload := a.data[e.off : e.off+e.n]
		if crc32.ChecksumIEEE(payload) != e.crc {
			return nil, true, fmt.Errorf("%w: section %q checksum mismatch", ErrCorrupt, name)
		}
		return payload, true, nil
	}
	return nil, false, nil
}

// need is section for sections the format requires once their group is
// present.
func (a *Attached) need(name string) ([]byte, error) {
	payload, ok, err := a.section(name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: no %q section", ErrTruncated, name)
	}
	return payload, nil
}

func (a *Attached) has(name string) bool {
	for _, e := range a.dir {
		if e.name == name {
			return true
		}
	}
	return false
}

// Snapshot materializes the attached file into a fully-rehydrated
// *Snapshot, once; further calls return the same value. Reports computed
// from it are byte-identical to reports computed from the v1 load path —
// pinned by snapshot_equiv_test.go. The flat hot-path arrays (all-transit
// series, cone rows) are adopted as views over the mapping, not copied.
func (a *Attached) Snapshot() (*Snapshot, error) {
	a.once.Do(func() { a.snap, a.err = a.materialize() })
	return a.snap, a.err
}

func (a *Attached) materialize() (*Snapshot, error) {
	if a.data == nil {
		return nil, fmt.Errorf("snapshot: attachment is closed")
	}
	worldPayload, err := a.need(flatWorld)
	if err != nil {
		return nil, err
	}
	w, err := decodeWorldBody(worldPayload)
	if err != nil {
		return nil, err
	}

	// The persisted dense-id plane must be exactly the restored universe in
	// ascending order; the index is rebuilt from it without re-sorting.
	planeRaw, err := a.need(flatASNs)
	if err != nil {
		return nil, err
	}
	plane, err := viewU32(planeRaw, flatASNs)
	if err != nil {
		return nil, err
	}
	asns := w.Graph.ASNs()
	if len(plane) != len(asns) {
		return nil, fmt.Errorf("%w: asn.ids has %d ids, world has %d networks", ErrCorrupt, len(plane), len(asns))
	}
	for i, asn := range asns {
		if topo.ASN(plane[i]) != asn {
			return nil, fmt.Errorf("%w: asn.ids[%d] = %d, world universe has %d", ErrCorrupt, i, plane[i], asn)
		}
	}
	ix, err := asindex.FromSorted(asns)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	w.Index = ix
	if err := w.RestoreSpecTable(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	s := &Snapshot{World: w, Digest: digestOf(a.data)}

	if payload, ok, err := a.section(flatDataset); err != nil {
		return nil, err
	} else if ok {
		if s.Dataset, err = decodeDataset(payload, w); err != nil {
			return nil, err
		}
	}

	if a.has(flatSeriesIn) || a.has(flatSeriesOut) {
		if s.Dataset == nil {
			return nil, fmt.Errorf("%w: series sections without dataset section", ErrCorrupt)
		}
		inRaw, err := a.need(flatSeriesIn)
		if err != nil {
			return nil, err
		}
		outRaw, err := a.need(flatSeriesOut)
		if err != nil {
			return nil, err
		}
		in, err := viewF64(inRaw, flatSeriesIn)
		if err != nil {
			return nil, err
		}
		out, err := viewF64(outRaw, flatSeriesOut)
		if err != nil {
			return nil, err
		}
		if err := s.Dataset.AdoptAllTransitSeries(in, out); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}

	if a.has(flatConeIDs) || a.has(flatConeOffs) || a.has(flatConeData) {
		cc, err := a.materializeCones(s)
		if err != nil {
			return nil, err
		}
		s.Cones = cc
	}

	if a.has(flatSpreadCfg) || a.has(flatObsRows) {
		sp, err := a.materializeSpread(s)
		if err != nil {
			return nil, err
		}
		s.Spread = sp
	}

	if payload, ok, err := a.section(flatTick); err != nil {
		return nil, err
	} else if ok {
		if s.Tick, err = decodeTick(payload); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// materializeCones rebuilds the cone cache from the three flat cone
// sections, with the rows aliasing the mapping.
func (a *Attached) materializeCones(s *Snapshot) (*offload.ConeCache, error) {
	idsRaw, err := a.need(flatConeIDs)
	if err != nil {
		return nil, err
	}
	offsRaw, err := a.need(flatConeOffs)
	if err != nil {
		return nil, err
	}
	dataRaw, err := a.need(flatConeData)
	if err != nil {
		return nil, err
	}
	ids, err := viewI32(idsRaw, flatConeIDs)
	if err != nil {
		return nil, err
	}
	offs, err := viewU32(offsRaw, flatConeOffs)
	if err != nil {
		return nil, err
	}
	data, err := viewI32(dataRaw, flatConeData)
	if err != nil {
		return nil, err
	}
	if len(offs) != len(ids)+1 {
		return nil, fmt.Errorf("%w: cones.offs has %d offsets for %d ids", ErrCorrupt, len(offs), len(ids))
	}
	if len(ids) > 0 && offs[0] != 0 {
		return nil, fmt.Errorf("%w: cones.offs does not start at 0", ErrCorrupt)
	}
	rows := make([][]int32, len(ids))
	for k := range ids {
		lo, hi := offs[k], offs[k+1]
		if lo > hi || uint64(hi) > uint64(len(data)) {
			return nil, fmt.Errorf("%w: cones.offs row %d spans [%d, %d) of %d entries", ErrCorrupt, k, lo, hi, len(data))
		}
		rows[k] = data[lo:hi:hi]
	}
	cc := offload.NewConeCache()
	if err := cc.Prime(s.World, ids, rows); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return cc, nil
}

// materializeSpread rebuilds the measurement campaign from the flat
// observation and ground-truth tables: one slice allocation for the
// observation stream, strings shared from the interned table.
func (a *Attached) materializeSpread(s *Snapshot) (*spread.Result, error) {
	cfgRaw, err := a.need(flatSpreadCfg)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: cfgRaw}
	seed, campaign, detector, err := decodeSpreadCfg(d)
	if err != nil {
		return nil, err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes in spread.cfg section", ErrCorrupt, len(d.buf)-d.off)
	}

	strsRaw, err := a.need(flatObsStrs)
	if err != nil {
		return nil, err
	}
	ds := &dec{buf: strsRaw}
	table := decodeStringTable(ds)
	if ds.err != nil {
		return nil, ds.err
	}
	if ds.off != len(ds.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes in obs.strs section", ErrCorrupt, len(ds.buf)-ds.off)
	}
	rowsRaw, err := a.need(flatObsRows)
	if err != nil {
		return nil, err
	}
	raw, err := decodeObsRows(rowsRaw, table)
	if err != nil {
		return nil, err
	}

	ixpsRaw, err := a.need(flatTruthIXPs)
	if err != nil {
		return nil, err
	}
	toffsRaw, err := a.need(flatTruthOffs)
	if err != nil {
		return nil, err
	}
	taddrsRaw, err := a.need(flatTruthAddrs)
	if err != nil {
		return nil, err
	}
	tixps, err := viewI32(ixpsRaw, flatTruthIXPs)
	if err != nil {
		return nil, err
	}
	toffs, err := viewU32(toffsRaw, flatTruthOffs)
	if err != nil {
		return nil, err
	}
	if len(taddrsRaw)%truthRowSize != 0 {
		return nil, fmt.Errorf("%w: truth.addrs length %d is not a multiple of %d", ErrCorrupt, len(taddrsRaw), truthRowSize)
	}
	nRows := uint32(len(taddrsRaw) / truthRowSize)
	if len(toffs) != len(tixps)+1 {
		return nil, fmt.Errorf("%w: truth.offs has %d offsets for %d IXPs", ErrCorrupt, len(toffs), len(tixps))
	}
	if len(tixps) > 0 && toffs[0] != 0 {
		return nil, fmt.Errorf("%w: truth.offs does not start at 0", ErrCorrupt)
	}
	ixps := make([]int, len(tixps))
	remote := make([][]netip.Addr, len(tixps))
	for k := range tixps {
		ixps[k] = int(tixps[k])
		lo, hi := toffs[k], toffs[k+1]
		if lo > hi || hi > nRows {
			return nil, fmt.Errorf("%w: truth.offs row %d spans [%d, %d) of %d rows", ErrCorrupt, k, lo, hi, nRows)
		}
		ips, err := decodeTruthAddrs(taddrsRaw, lo, hi)
		if err != nil {
			return nil, err
		}
		remote[k] = ips
	}
	res, err := spread.Rehydrate(s.World, seed, campaign, detector, raw, ixps, remote)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return res, nil
}
