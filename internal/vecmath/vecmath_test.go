package vecmath

import (
	"math"
	"testing"
)

// TestJitterRowMatchesScalar is the package's load-bearing test: the SIMD
// row kernel must reproduce the scalar chain bit-for-bit — including the
// ~5% of lanes that fall into the Acklam tail branches and are spilled
// back to scalar — across many streams and row offsets.
func TestJitterRowMatchesScalar(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no SIMD kernels on this machine; scalar path is the reference itself")
	}
	lengths := []int{1, 2, 3, 4, 5, 7, 8, 63, 64, 288, 1021, 8064}
	bases := []uint64{0, 1, 0xDEADBEEF, 0x9E3779B97F4A7C15, 1 << 63, ^uint64(0)}
	for _, n := range lengths {
		for _, base := range bases {
			for _, t0 := range []int{0, 1, 17, 8000} {
				simd := make([]float64, n)
				JitterRow(simd, base, t0)
				for i := range simd {
					want := Jitter(base, t0+i)
					if math.Float64bits(simd[i]) != math.Float64bits(want) {
						t.Fatalf("JitterRow(n=%d, base=%#x, t0=%d)[%d] = %x, scalar %x",
							n, base, t0, i, simd[i], want)
					}
				}
			}
		}
	}
}

// TestJitterRowManyStreams sweeps enough streams to hit every branch
// combination within quads (all-central, mixed, all-tail is vanishingly
// rare but the spill machinery is per-lane anyway).
func TestJitterRowManyStreams(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no SIMD kernels on this machine")
	}
	const n = 512
	simd := make([]float64, n)
	for s := 0; s < 400; s++ {
		base := uint64(s)*0x9E3779B97F4A7C15 + 12345
		JitterRow(simd, base, 0)
		for i := range simd {
			want := Jitter(base, i)
			if math.Float64bits(simd[i]) != math.Float64bits(want) {
				t.Fatalf("stream %d lane %d: simd %x scalar %x", s, i, simd[i], want)
			}
		}
	}
}

// TestAccumRowMatchesScalar pins the accumulate kernel against the scalar
// fold expression at every length and alignment.
func TestAccumRowMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 16, 127, 288} {
		prof := make([]float64, n)
		j := make([]float64, n)
		accSIMD := make([]float64, n)
		accScalar := make([]float64, n)
		for i := range prof {
			prof[i] = 0.5 + float64(i%7)/13
			j[i] = 0.9 + float64(i%11)/29
			accSIMD[i] = float64(i) * 1e6
			accScalar[i] = accSIMD[i]
		}
		avg := 3.75e8
		AccumRow(accSIMD, prof, j, avg)
		for i := range accScalar {
			accScalar[i] += (avg * prof[i]) * j[i]
		}
		for i := range accSIMD {
			if math.Float64bits(accSIMD[i]) != math.Float64bits(accScalar[i]) {
				t.Fatalf("n=%d lane %d: simd %x scalar %x", n, i, accSIMD[i], accScalar[i])
			}
		}
	}
}

// TestSetSIMDToggle checks the test knob: with SIMD forced off the row
// kernel must still produce the same bits (it is the scalar loop then).
func TestSetSIMDToggle(t *testing.T) {
	was := SIMDEnabled()
	defer SetSIMD(was)
	const n = 288
	base := uint64(0xABCDEF123456)
	on := make([]float64, n)
	JitterRow(on, base, 5)
	SetSIMD(false)
	if SIMDEnabled() {
		t.Fatal("SetSIMD(false) left SIMD enabled")
	}
	off := make([]float64, n)
	JitterRow(off, base, 5)
	for i := range on {
		if math.Float64bits(on[i]) != math.Float64bits(off[i]) {
			t.Fatalf("lane %d: simd %x scalar %x", i, on[i], off[i])
		}
	}
}

// TestJitterAgainstMathExp pins the scalar chain itself against the
// spelled-out composition, guarding accidental drift in Jitter.
func TestJitterAgainstMathExp(t *testing.T) {
	for i := 0; i < 10000; i++ {
		base := uint64(i) * 0x9E3779B97F4A7C15
		got := Jitter(base, i)
		want := math.Exp(0.3 * NormFromUniform(Hash01(base, i)))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("i=%d: %x vs %x", i, got, want)
		}
	}
}

// TestJitterAccumRowMatchesScalar pins the fused kernel against the
// spelled-out scalar fold at many lengths, streams, and accumulator
// states — including the spilled-lane patch ordering.
func TestJitterAccumRowMatchesScalar(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 64, 288, 1021} {
		for s := 0; s < 40; s++ {
			base := uint64(s)*0x9E3779B97F4A7C15 + 777
			prof := make([]float64, n)
			got := make([]float64, n)
			want := make([]float64, n)
			for i := range prof {
				prof[i] = 0.5 + float64(i%9)/17
				got[i] = float64(i) * 1e5
				want[i] = got[i]
			}
			avg := 2.5e8
			JitterAccumRow(got, prof, avg, base, 3)
			for i := range want {
				want[i] += (avg * prof[i]) * Jitter(base, 3+i)
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d stream=%d lane %d: fused %x scalar %x", n, s, i, got[i], want[i])
				}
			}
		}
	}
}
