//go:build !amd64

package vecmath

// Non-amd64 builds always take the pure-Go path; results are identical
// by construction, just without the 4-wide throughput.
const hasKernels = false

func jitterRow4(j *float64, n int, base uint64, t0 int, spill *int32) int { panic("unreachable") }

func accumRow4(acc, prof, j *float64, n int, avg float64) { panic("unreachable") }

func jitterAccumRow4(acc, prof *float64, avg float64, n int, base uint64, t0 int, spill *int32) int {
	panic("unreachable")
}
