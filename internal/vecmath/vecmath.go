// Package vecmath holds the numeric kernel of the traffic-series
// synthesis: the deterministic hash → inverse-normal → exponential chain
// that turns (entry, interval) coordinates into multiplicative lognormal
// jitter. The chain is evaluated hundreds of millions of times per month
// of 5-minute samples, so this package provides, next to the scalar
// reference implementation, a 4-wide AVX2+FMA row kernel that computes
// the *identical* float64 bit patterns.
//
// Bit-exactness is the package contract, not an aspiration: the
// repo's equivalence goldens pin every series sample, so the SIMD path
// may only reorganise work, never arithmetic. Three facts make that
// possible:
//
//   - Every lane of a packed AVX2 instruction rounds exactly like the
//     corresponding scalar instruction, so evaluating four independent
//     samples side by side is a pure re-scheduling.
//   - Go's compiler does not contract a*b+c into FMA on amd64, so the
//     assembly mirrors the scalar code mul-for-mul and add-for-add —
//     except inside math.Exp, whose amd64 assembly *does* use FMA when
//     the CPU has AVX+FMA; the vector kernel replicates that exact
//     instruction sequence (see exp steps in kernels_amd64.s) and is
//     therefore only enabled on CPUs where math.Exp takes the FMA path.
//   - The Acklam inverse-CDF tail branches (u outside the central
//     ~95%) need math.Log; those lanes are spilled back to the scalar
//     implementation and patched into the row afterwards.
//
// The scalar helpers (Hash01, NormFromUniform, Jitter) are the single
// source of truth the rest of the repo uses for one-off samples; the
// row kernels (JitterRow, AccumRow) are the bulk path.
package vecmath

import (
	"math"
	"sync"
	"sync/atomic"
)

// simdOff disables the assembly kernels when set; tests use it to pin
// SIMD output against the pure-Go path on the same machine.
var simdOff atomic.Bool

// SIMDEnabled reports whether the AVX2+FMA row kernels are active.
func SIMDEnabled() bool { return hasKernels && !simdOff.Load() }

// SetSIMD enables or disables the assembly kernels (no-op on machines
// without them) and reports whether they are now active. Results are
// bit-identical either way; the switch exists so tests can prove it.
func SetSIMD(on bool) bool {
	simdOff.Store(!on)
	return SIMDEnabled()
}

// Hash01 derives a deterministic uniform [0,1) value from a per-stream
// base and a sample index: splitmix64's finaliser over base ^ uint32(t).
// The 2^-53 scale is a multiplication by an exact power of two, so it is
// bit-identical to the division it replaces.
func Hash01(base uint64, t int) float64 {
	x := base ^ uint64(uint32(t))
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) * (1.0 / float64(1<<53))
}

// Beasley-Springer-Moro style rational-approximation coefficients for
// NormFromUniform, hoisted to package level: a per-call composite literal
// would re-materialise all 21 words on every call of the series hot loop.
var (
	normA = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	normB = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	normC = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	normD = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
)

// plow is the Acklam central/tail split point; the SIMD kernel handles
// the central branch (u in [plow, 1-plow]) and spills the tails.
const plow = 0.02425

// NormFromUniform converts a uniform (0,1) value into a standard normal
// deviate via the inverse-CDF approximation of Acklam (sufficient for
// traffic jitter).
func NormFromUniform(u float64) float64 {
	if u <= 0 {
		u = 1e-12
	}
	if u >= 1 {
		u = 1 - 1e-12
	}
	a, b, c, dd := &normA, &normB, &normC, &normD
	switch {
	case u < plow:
		q := math.Sqrt(-2 * math.Log(u))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	case u > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-u))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	default:
		q := u - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Jitter is the full scalar chain: the multiplicative lognormal traffic
// jitter for sample t of the stream identified by base.
func Jitter(base uint64, t int) float64 {
	return math.Exp(0.3 * NormFromUniform(Hash01(base, t)))
}

// spillPool recycles the spill-index scratch the SIMD row kernel records
// tail-branch lanes into (~5% of samples land there).
var spillPool = sync.Pool{
	New: func() any { s := make([]int32, 4096); return &s },
}

// JitterRow fills j[i] = Jitter(base, t0+i) for every i. The SIMD path
// computes central-branch lanes four wide, then patches the spilled
// tail-branch lanes with the scalar chain; the result is bit-identical
// to the scalar loop for every input.
func JitterRow(j []float64, base uint64, t0 int) {
	if !SIMDEnabled() {
		for i := range j {
			j[i] = Jitter(base, t0+i)
		}
		return
	}
	n4 := len(j) &^ 3
	if n4 > 0 {
		sp := spillPool.Get().(*[]int32)
		if cap(*sp) < n4 {
			*sp = make([]int32, n4)
		}
		spill := (*sp)[:cap(*sp)]
		ns := jitterRow4(&j[0], n4, base, t0, &spill[0])
		for _, idx := range spill[:ns] {
			j[idx] = Jitter(base, t0+int(idx))
		}
		spillPool.Put(sp)
	}
	for i := n4; i < len(j); i++ {
		j[i] = Jitter(base, t0+i)
	}
}

// AccumRow folds one entry's jitter row into an accumulator slice:
// acc[i] += (avg * prof[i]) * j[i], the exact expression and evaluation
// order of the scalar series loop. Slices must have equal length.
func AccumRow(acc, prof, j []float64, avg float64) {
	if len(prof) != len(acc) || len(j) != len(acc) {
		panic("vecmath: AccumRow length mismatch")
	}
	if len(acc) == 0 {
		return
	}
	n4 := 0
	if SIMDEnabled() {
		n4 = len(acc) &^ 3
		if n4 > 0 {
			accumRow4(&acc[0], &prof[0], &j[0], n4, avg)
		}
	}
	for i := n4; i < len(acc); i++ {
		acc[i] += (avg * prof[i]) * j[i]
	}
}

// JitterAccumRow fuses JitterRow and AccumRow for the serial fold:
// acc[i] += (avg * prof[i]) * Jitter(base, t0+i), without materialising
// the jitter row. Exactly the scalar expression, exactly the scalar
// order; the SIMD path adds +0.0 on tail-branch lanes and patches them
// scalar afterwards (x + 0.0 = x exactly for the non-negative series
// values, so the deferred patch leaves the accumulation chain intact).
func JitterAccumRow(acc, prof []float64, avg float64, base uint64, t0 int) {
	if len(prof) != len(acc) {
		panic("vecmath: JitterAccumRow length mismatch")
	}
	if !SIMDEnabled() {
		for i := range acc {
			acc[i] += (avg * prof[i]) * Jitter(base, t0+i)
		}
		return
	}
	n4 := len(acc) &^ 3
	if n4 > 0 {
		sp := spillPool.Get().(*[]int32)
		if cap(*sp) < n4 {
			*sp = make([]int32, n4)
		}
		spill := (*sp)[:cap(*sp)]
		ns := jitterAccumRow4(&acc[0], &prof[0], avg, n4, base, t0, &spill[0])
		for _, idx := range spill[:ns] {
			acc[idx] += (avg * prof[idx]) * Jitter(base, t0+int(idx))
		}
		spillPool.Put(sp)
	}
	for i := n4; i < len(acc); i++ {
		acc[i] += (avg * prof[i]) * Jitter(base, t0+i)
	}
}
