// AVX2+FMA row kernels for the traffic-jitter chain. Bit-exactness
// contract: every packed instruction below rounds lane-wise exactly like
// the scalar instruction the Go (or math.Exp assembly) reference
// executes, and the instruction sequence mirrors the reference
// operation-for-operation:
//
//   - splitmix64 finisher: 64-bit integer ops, trivially exact;
//   - uniform mapping: CVTSQ2SD (exact for < 2^53) then one multiply by
//     2^-53, matching float64(x>>11) * (1.0/(1<<53));
//   - Acklam central branch: mul/add chains (NOT fused — the Go
//     compiler does not contract a*b+c on amd64) and one divide;
//   - exp: the exact avxfma instruction sequence of math.archExp
//     (exp_amd64.s), which the scalar path takes on every CPU this
//     kernel is enabled on (it requires AVX+FMA, and the kernel gate
//     requires AVX2+FMA);
//   - lanes whose uniform falls outside the central branch are zeroed
//     and their indices spilled for the scalar caller to patch — the
//     tail branches need math.Log, which has no vector twin here.
//
// Garbage flowing through disabled lanes (huge norms from the central
// polynomial applied to tail uniforms) is harmless: FP faults are
// masked, VCVTPD2DQ yields the integer-indefinite value, and the final
// VANDPD blends those lanes to zero before anything is stored.

//go:build amd64

#include "textflag.h"

// inv53 (offset 0)
DATA konst4<>+0(SB)/8, $0x3CA0000000000000
DATA konst4<>+8(SB)/8, $0x3CA0000000000000
DATA konst4<>+16(SB)/8, $0x3CA0000000000000
DATA konst4<>+24(SB)/8, $0x3CA0000000000000
// plow (offset 32)
DATA konst4<>+32(SB)/8, $0x3F98D4FDF3B645A2
DATA konst4<>+40(SB)/8, $0x3F98D4FDF3B645A2
DATA konst4<>+48(SB)/8, $0x3F98D4FDF3B645A2
DATA konst4<>+56(SB)/8, $0x3F98D4FDF3B645A2
// phigh (offset 64)
DATA konst4<>+64(SB)/8, $0x3FEF395810624DD3
DATA konst4<>+72(SB)/8, $0x3FEF395810624DD3
DATA konst4<>+80(SB)/8, $0x3FEF395810624DD3
DATA konst4<>+88(SB)/8, $0x3FEF395810624DD3
// half (offset 96)
DATA konst4<>+96(SB)/8, $0x3FE0000000000000
DATA konst4<>+104(SB)/8, $0x3FE0000000000000
DATA konst4<>+112(SB)/8, $0x3FE0000000000000
DATA konst4<>+120(SB)/8, $0x3FE0000000000000
// a0 (offset 128)
DATA konst4<>+128(SB)/8, $0xC043D931BC1E0525
DATA konst4<>+136(SB)/8, $0xC043D931BC1E0525
DATA konst4<>+144(SB)/8, $0xC043D931BC1E0525
DATA konst4<>+152(SB)/8, $0xC043D931BC1E0525
// a1 (offset 160)
DATA konst4<>+160(SB)/8, $0x406B9E467034039B
DATA konst4<>+168(SB)/8, $0x406B9E467034039B
DATA konst4<>+176(SB)/8, $0x406B9E467034039B
DATA konst4<>+184(SB)/8, $0x406B9E467034039B
// a2 (offset 192)
DATA konst4<>+192(SB)/8, $0xC0713EDB2DC53B99
DATA konst4<>+200(SB)/8, $0xC0713EDB2DC53B99
DATA konst4<>+208(SB)/8, $0xC0713EDB2DC53B99
DATA konst4<>+216(SB)/8, $0xC0713EDB2DC53B99
// a3 (offset 224)
DATA konst4<>+224(SB)/8, $0x40614B72B40B401B
DATA konst4<>+232(SB)/8, $0x40614B72B40B401B
DATA konst4<>+240(SB)/8, $0x40614B72B40B401B
DATA konst4<>+248(SB)/8, $0x40614B72B40B401B
// a4 (offset 256)
DATA konst4<>+256(SB)/8, $0xC03EAA3034C08BCD
DATA konst4<>+264(SB)/8, $0xC03EAA3034C08BCD
DATA konst4<>+272(SB)/8, $0xC03EAA3034C08BCD
DATA konst4<>+280(SB)/8, $0xC03EAA3034C08BCD
// a5 (offset 288)
DATA konst4<>+288(SB)/8, $0x40040D9320575479
DATA konst4<>+296(SB)/8, $0x40040D9320575479
DATA konst4<>+304(SB)/8, $0x40040D9320575479
DATA konst4<>+312(SB)/8, $0x40040D9320575479
// b0 (offset 320)
DATA konst4<>+320(SB)/8, $0xC04B3CF0CE3004C4
DATA konst4<>+328(SB)/8, $0xC04B3CF0CE3004C4
DATA konst4<>+336(SB)/8, $0xC04B3CF0CE3004C4
DATA konst4<>+344(SB)/8, $0xC04B3CF0CE3004C4
// b1 (offset 352)
DATA konst4<>+352(SB)/8, $0x406432BF2CF04277
DATA konst4<>+360(SB)/8, $0x406432BF2CF04277
DATA konst4<>+368(SB)/8, $0x406432BF2CF04277
DATA konst4<>+376(SB)/8, $0x406432BF2CF04277
// b2 (offset 384)
DATA konst4<>+384(SB)/8, $0xC063765E0B02D8D2
DATA konst4<>+392(SB)/8, $0xC063765E0B02D8D2
DATA konst4<>+400(SB)/8, $0xC063765E0B02D8D2
DATA konst4<>+408(SB)/8, $0xC063765E0B02D8D2
// b3 (offset 416)
DATA konst4<>+416(SB)/8, $0x4050B348B1A7E9BE
DATA konst4<>+424(SB)/8, $0x4050B348B1A7E9BE
DATA konst4<>+432(SB)/8, $0x4050B348B1A7E9BE
DATA konst4<>+440(SB)/8, $0x4050B348B1A7E9BE
// b4 (offset 448)
DATA konst4<>+448(SB)/8, $0xC02A8FB57E147826
DATA konst4<>+456(SB)/8, $0xC02A8FB57E147826
DATA konst4<>+464(SB)/8, $0xC02A8FB57E147826
DATA konst4<>+472(SB)/8, $0xC02A8FB57E147826
// one (offset 480)
DATA konst4<>+480(SB)/8, $0x3FF0000000000000
DATA konst4<>+488(SB)/8, $0x3FF0000000000000
DATA konst4<>+496(SB)/8, $0x3FF0000000000000
DATA konst4<>+504(SB)/8, $0x3FF0000000000000
// c03 (offset 512)
DATA konst4<>+512(SB)/8, $0x3FD3333333333333
DATA konst4<>+520(SB)/8, $0x3FD3333333333333
DATA konst4<>+528(SB)/8, $0x3FD3333333333333
DATA konst4<>+536(SB)/8, $0x3FD3333333333333
// log2e (offset 544)
DATA konst4<>+544(SB)/8, $0x3FF71547652B82FE
DATA konst4<>+552(SB)/8, $0x3FF71547652B82FE
DATA konst4<>+560(SB)/8, $0x3FF71547652B82FE
DATA konst4<>+568(SB)/8, $0x3FF71547652B82FE
// ln2u (offset 576)
DATA konst4<>+576(SB)/8, $0x3FE62E42FEFA3000
DATA konst4<>+584(SB)/8, $0x3FE62E42FEFA3000
DATA konst4<>+592(SB)/8, $0x3FE62E42FEFA3000
DATA konst4<>+600(SB)/8, $0x3FE62E42FEFA3000
// ln2l (offset 608)
DATA konst4<>+608(SB)/8, $0x3D53DE6AF278ECE6
DATA konst4<>+616(SB)/8, $0x3D53DE6AF278ECE6
DATA konst4<>+624(SB)/8, $0x3D53DE6AF278ECE6
DATA konst4<>+632(SB)/8, $0x3D53DE6AF278ECE6
// sixt (offset 640)
DATA konst4<>+640(SB)/8, $0x3FB0000000000000
DATA konst4<>+648(SB)/8, $0x3FB0000000000000
DATA konst4<>+656(SB)/8, $0x3FB0000000000000
DATA konst4<>+664(SB)/8, $0x3FB0000000000000
// c9 (offset 672)
DATA konst4<>+672(SB)/8, $0x3EFA01A01A01A01A
DATA konst4<>+680(SB)/8, $0x3EFA01A01A01A01A
DATA konst4<>+688(SB)/8, $0x3EFA01A01A01A01A
DATA konst4<>+696(SB)/8, $0x3EFA01A01A01A01A
// c8 (offset 704)
DATA konst4<>+704(SB)/8, $0x3F2A01A01A01A01A
DATA konst4<>+712(SB)/8, $0x3F2A01A01A01A01A
DATA konst4<>+720(SB)/8, $0x3F2A01A01A01A01A
DATA konst4<>+728(SB)/8, $0x3F2A01A01A01A01A
// c7 (offset 736)
DATA konst4<>+736(SB)/8, $0x3F56C16C16C16C17
DATA konst4<>+744(SB)/8, $0x3F56C16C16C16C17
DATA konst4<>+752(SB)/8, $0x3F56C16C16C16C17
DATA konst4<>+760(SB)/8, $0x3F56C16C16C16C17
// c6 (offset 768)
DATA konst4<>+768(SB)/8, $0x3F81111111111111
DATA konst4<>+776(SB)/8, $0x3F81111111111111
DATA konst4<>+784(SB)/8, $0x3F81111111111111
DATA konst4<>+792(SB)/8, $0x3F81111111111111
// c5 (offset 800)
DATA konst4<>+800(SB)/8, $0x3FA5555555555555
DATA konst4<>+808(SB)/8, $0x3FA5555555555555
DATA konst4<>+816(SB)/8, $0x3FA5555555555555
DATA konst4<>+824(SB)/8, $0x3FA5555555555555
// c4 (offset 832)
DATA konst4<>+832(SB)/8, $0x3FC5555555555555
DATA konst4<>+840(SB)/8, $0x3FC5555555555555
DATA konst4<>+848(SB)/8, $0x3FC5555555555555
DATA konst4<>+856(SB)/8, $0x3FC5555555555555
// two (offset 864)
DATA konst4<>+864(SB)/8, $0x4000000000000000
DATA konst4<>+872(SB)/8, $0x4000000000000000
DATA konst4<>+880(SB)/8, $0x4000000000000000
DATA konst4<>+888(SB)/8, $0x4000000000000000
// int32 exponent bias x4 (offset 896)
DATA konst4<>+896(SB)/4, $0x000003FF
DATA konst4<>+900(SB)/4, $0x000003FF
DATA konst4<>+904(SB)/4, $0x000003FF
DATA konst4<>+908(SB)/4, $0x000003FF
// int64 lane offsets 0..3 (offset 912)
DATA konst4<>+912(SB)/8, $0
DATA konst4<>+920(SB)/8, $1
DATA konst4<>+928(SB)/8, $2
DATA konst4<>+936(SB)/8, $3
// int64 4 (offset 944)
DATA konst4<>+944(SB)/8, $4
DATA konst4<>+952(SB)/8, $4
DATA konst4<>+960(SB)/8, $4
DATA konst4<>+968(SB)/8, $4
// low-32 mask (offset 976)
DATA konst4<>+976(SB)/8, $0x00000000FFFFFFFF
DATA konst4<>+984(SB)/8, $0x00000000FFFFFFFF
DATA konst4<>+992(SB)/8, $0x00000000FFFFFFFF
DATA konst4<>+1000(SB)/8, $0x00000000FFFFFFFF
// splitmix64 multiplier 1 (offset 1008)
DATA konst4<>+1008(SB)/8, $0xBF58476D1CE4E5B9
DATA konst4<>+1016(SB)/8, $0xBF58476D1CE4E5B9
DATA konst4<>+1024(SB)/8, $0xBF58476D1CE4E5B9
DATA konst4<>+1032(SB)/8, $0xBF58476D1CE4E5B9
// multiplier 1 high half (offset 1040)
DATA konst4<>+1040(SB)/8, $0x00000000BF58476D
DATA konst4<>+1048(SB)/8, $0x00000000BF58476D
DATA konst4<>+1056(SB)/8, $0x00000000BF58476D
DATA konst4<>+1064(SB)/8, $0x00000000BF58476D
// splitmix64 multiplier 2 (offset 1072)
DATA konst4<>+1072(SB)/8, $0x94D049BB133111EB
DATA konst4<>+1080(SB)/8, $0x94D049BB133111EB
DATA konst4<>+1088(SB)/8, $0x94D049BB133111EB
DATA konst4<>+1096(SB)/8, $0x94D049BB133111EB
// multiplier 2 high half (offset 1104)
DATA konst4<>+1104(SB)/8, $0x0000000094D049BB
DATA konst4<>+1112(SB)/8, $0x0000000094D049BB
DATA konst4<>+1120(SB)/8, $0x0000000094D049BB
DATA konst4<>+1128(SB)/8, $0x0000000094D049BB
// 2^52 (int bits and double) (offset 1136)
DATA konst4<>+1136(SB)/8, $0x4330000000000000
DATA konst4<>+1144(SB)/8, $0x4330000000000000
DATA konst4<>+1152(SB)/8, $0x4330000000000000
DATA konst4<>+1160(SB)/8, $0x4330000000000000
// 2^32 as double (offset 1168)
DATA konst4<>+1168(SB)/8, $0x41F0000000000000
DATA konst4<>+1176(SB)/8, $0x41F0000000000000
DATA konst4<>+1184(SB)/8, $0x41F0000000000000
DATA konst4<>+1192(SB)/8, $0x41F0000000000000
GLOBL konst4<>(SB), RODATA, $1200
#define K_inv53 0
#define K_plow 32
#define K_phigh 64
#define K_half 96
#define K_a0 128
#define K_a1 160
#define K_a2 192
#define K_a3 224
#define K_a4 256
#define K_a5 288
#define K_b0 320
#define K_b1 352
#define K_b2 384
#define K_b3 416
#define K_b4 448
#define K_one 480
#define K_c03 512
#define K_log2e 544
#define K_ln2u 576
#define K_ln2l 608
#define K_sixt 640
#define K_c9 672
#define K_c8 704
#define K_c7 736
#define K_c6 768
#define K_c5 800
#define K_c4 832
#define K_two 864
#define K_bias 896
#define K_iota 912
#define K_four 944
#define K_mask32 976
#define K_m1 1008
#define K_m1hi 1040
#define K_m2 1072
#define K_m2hi 1104
#define K_magic 1136
#define K_two32 1168

// func jitterRow4(j *float64, n int, base uint64, t0 int, spill *int32) int
// n must be a positive multiple of 4.
TEXT ·jitterRow4(SB), NOSPLIT, $0-48
	MOVQ j+0(FP), DI
	MOVQ n+8(FP), SI
	MOVQ base+16(FP), R8
	MOVQ t0+24(FP), R9
	MOVQ spill+32(FP), R10
	XORQ R11, R11                   // spill count
	XORQ R12, R12                   // i
	MOVQ R9, X8
	VPBROADCASTQ X8, Y8
	VPADDQ konst4<>+K_iota(SB), Y8, Y8  // t lanes {t0, t0+1, t0+2, t0+3}
	MOVQ R8, X10
	VPBROADCASTQ X10, Y9                // per-stream hash base

quad:
	CMPQ R12, SI
	JGE  done

	// ---- four splitmix64 lanes, 4-wide (64x64 low multiply built from
	// VPMULUDQ halves; uint64->double via the exact split conversion:
	// double(hi)*2^32 + double(lo), both steps exact below 2^53) ----
	VPAND konst4<>+K_mask32(SB), Y8, Y10 // uint64(uint32(t))
	VPXOR Y9, Y10, Y10                   // x = base ^ t32
	VPSRLQ $30, Y10, Y11
	VPXOR Y11, Y10, Y10                  // x ^= x>>30
	VPSRLQ $32, Y10, Y11
	VPMULUDQ konst4<>+K_m1(SB), Y10, Y12 // lo(x)*lo(m1)
	VPMULUDQ konst4<>+K_m1(SB), Y11, Y11 // hi(x)*lo(m1)
	VPMULUDQ konst4<>+K_m1hi(SB), Y10, Y13 // lo(x)*hi(m1)
	VPADDQ Y13, Y11, Y11
	VPSLLQ $32, Y11, Y11
	VPADDQ Y11, Y12, Y10                 // x *= m1
	VPSRLQ $27, Y10, Y11
	VPXOR Y11, Y10, Y10                  // x ^= x>>27
	VPSRLQ $32, Y10, Y11
	VPMULUDQ konst4<>+K_m2(SB), Y10, Y12
	VPMULUDQ konst4<>+K_m2(SB), Y11, Y11
	VPMULUDQ konst4<>+K_m2hi(SB), Y10, Y13
	VPADDQ Y13, Y11, Y11
	VPSLLQ $32, Y11, Y11
	VPADDQ Y11, Y12, Y10                 // x *= m2
	VPSRLQ $31, Y10, Y11
	VPXOR Y11, Y10, Y10                  // x ^= x>>31
	VPSRLQ $11, Y10, Y10                 // v = x>>11 (< 2^53)
	VPAND konst4<>+K_mask32(SB), Y10, Y11
	VPSRLQ $32, Y10, Y12
	VPOR konst4<>+K_magic(SB), Y11, Y11
	VPOR konst4<>+K_magic(SB), Y12, Y12
	VSUBPD konst4<>+K_magic(SB), Y11, Y11 // double(lo), exact
	VSUBPD konst4<>+K_magic(SB), Y12, Y12 // double(hi), exact
	VMULPD konst4<>+K_two32(SB), Y12, Y12 // *2^32, exact (hi <= 2^21)
	VADDPD Y11, Y12, Y0                   // double(v), exact
	VPADDQ konst4<>+K_four(SB), Y8, Y8    // advance t lanes

	// ---- u = conv * 2^-53 ----
	VMULPD konst4<>+K_inv53(SB), Y0, Y0

	// ---- central-branch mask: plow <= u <= 1-plow ----
	VCMPPD $0x1D, konst4<>+K_plow(SB), Y0, Y3   // u >= plow (GE_OQ)
	VCMPPD $0x12, konst4<>+K_phigh(SB), Y0, Y1  // u <= 1-plow (LE_OQ)
	VANDPD Y1, Y3, Y3
	VMOVMSKPD Y3, R13

	// ---- Acklam central branch (mul/add, no fusion, one divide) ----
	VSUBPD konst4<>+K_half(SB), Y0, Y1          // q = u - 0.5
	VMULPD Y1, Y1, Y2                           // r = q*q
	VMOVUPD konst4<>+K_a0(SB), Y4
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a1(SB), Y4, Y4            // a0*r + a1
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a2(SB), Y4, Y4
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a3(SB), Y4, Y4
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a4(SB), Y4, Y4
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a5(SB), Y4, Y4
	VMULPD Y1, Y4, Y4                           // numerator * q
	VMOVUPD konst4<>+K_b0(SB), Y5
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_b1(SB), Y5, Y5            // b0*r + b1
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_b2(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_b3(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_b4(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_one(SB), Y5, Y5           // denominator
	VDIVPD Y5, Y4, Y4                           // norm = (num*q) / den

	// ---- x = 0.3 * norm ----
	VMULPD konst4<>+K_c03(SB), Y4, Y4

	// ---- exp(x): the avxfma sequence of math.archExp ----
	VMULPD konst4<>+K_log2e(SB), Y4, Y5         // x * log2(e)
	VCVTPD2DQY Y5, X6                           // e (round to nearest int32)
	VCVTDQ2PD X6, Y5                            // float64(e)
	VFNMADD231PD konst4<>+K_ln2u(SB), Y5, Y4    // x -= e*ln2u (fused)
	VFNMADD231PD konst4<>+K_ln2l(SB), Y5, Y4    // x -= e*ln2l (fused)
	VMULPD konst4<>+K_sixt(SB), Y4, Y4          // x *= 0.0625
	VMOVUPD konst4<>+K_c9(SB), Y7
	VFMADD213PD konst4<>+K_c8(SB), Y4, Y7       // h = h*x + c (fused), Taylor chain
	VFMADD213PD konst4<>+K_c7(SB), Y4, Y7
	VFMADD213PD konst4<>+K_c6(SB), Y4, Y7
	VFMADD213PD konst4<>+K_c5(SB), Y4, Y7
	VFMADD213PD konst4<>+K_c4(SB), Y4, Y7
	VFMADD213PD konst4<>+K_half(SB), Y4, Y7     // ... + 0.5
	VFMADD213PD konst4<>+K_one(SB), Y4, Y7      // ... + 1.0
	VMULPD Y7, Y4, Y4                           // x *= h
	VADDPD konst4<>+K_two(SB), Y4, Y5           // w = x + 2
	VMULPD Y5, Y4, Y4                           // x *= w (un-reduce, 4 rounds)
	VADDPD konst4<>+K_two(SB), Y4, Y5
	VMULPD Y5, Y4, Y4
	VADDPD konst4<>+K_two(SB), Y4, Y5
	VMULPD Y5, Y4, Y4
	VADDPD konst4<>+K_two(SB), Y4, Y5
	VFMADD213PD konst4<>+K_one(SB), Y5, Y4      // x = x*w + 1 (fused)
	VPADDD konst4<>+K_bias(SB), X6, X6          // biased exponent
	VPMOVSXDQ X6, Y5
	VPSLLQ $52, Y5, Y5
	VMULPD Y5, Y4, Y4                           // x *= 2^e

	// ---- blend tail-branch lanes to zero, store, record spills ----
	VANDPD Y3, Y4, Y4
	VMOVUPD Y4, (DI)
	XORL $0xF, R13
	JZ   next
	TESTL $1, R13
	JZ   lane1
	MOVL R12, AX
	MOVL AX, (R10)(R11*4)
	INCQ R11
lane1:
	TESTL $2, R13
	JZ   lane2
	LEAQ 1(R12), AX
	MOVL AX, (R10)(R11*4)
	INCQ R11
lane2:
	TESTL $4, R13
	JZ   lane3
	LEAQ 2(R12), AX
	MOVL AX, (R10)(R11*4)
	INCQ R11
lane3:
	TESTL $8, R13
	JZ   next
	LEAQ 3(R12), AX
	MOVL AX, (R10)(R11*4)
	INCQ R11
next:
	ADDQ $32, DI
	ADDQ $4, R12
	JMP  quad

done:
	MOVQ R11, ret+40(FP)
	VZEROUPPER
	RET

// func jitterAccumRow4(acc, prof *float64, avg float64, n int, base uint64, t0 int, spill *int32) int
// acc[i] += (avg*prof[i])*jitter(i) for central lanes (+0 for spilled
// ones, which the caller patches); n must be a positive multiple of 4.
TEXT ·jitterAccumRow4(SB), NOSPLIT, $0-64
	MOVQ acc+0(FP), DI
	MOVQ prof+8(FP), SI
	VBROADCASTSD avg+16(FP), Y15
	MOVQ n+24(FP), CX
	MOVQ base+32(FP), R8
	MOVQ t0+40(FP), R9
	MOVQ spill+48(FP), R10
	XORQ R11, R11                   // spill count
	XORQ R12, R12                   // i
	MOVQ R9, X8
	VPBROADCASTQ X8, Y8
	VPADDQ konst4<>+K_iota(SB), Y8, Y8  // t lanes {t0, t0+1, t0+2, t0+3}
	MOVQ R8, X10
	VPBROADCASTQ X10, Y9                // per-stream hash base

fquad:
	CMPQ R12, CX
	JGE  fdone

	// ---- four splitmix64 lanes, 4-wide (64x64 low multiply built from
	// VPMULUDQ halves; uint64->double via the exact split conversion:
	// double(hi)*2^32 + double(lo), both steps exact below 2^53) ----
	VPAND konst4<>+K_mask32(SB), Y8, Y10 // uint64(uint32(t))
	VPXOR Y9, Y10, Y10                   // x = base ^ t32
	VPSRLQ $30, Y10, Y11
	VPXOR Y11, Y10, Y10                  // x ^= x>>30
	VPSRLQ $32, Y10, Y11
	VPMULUDQ konst4<>+K_m1(SB), Y10, Y12 // lo(x)*lo(m1)
	VPMULUDQ konst4<>+K_m1(SB), Y11, Y11 // hi(x)*lo(m1)
	VPMULUDQ konst4<>+K_m1hi(SB), Y10, Y13 // lo(x)*hi(m1)
	VPADDQ Y13, Y11, Y11
	VPSLLQ $32, Y11, Y11
	VPADDQ Y11, Y12, Y10                 // x *= m1
	VPSRLQ $27, Y10, Y11
	VPXOR Y11, Y10, Y10                  // x ^= x>>27
	VPSRLQ $32, Y10, Y11
	VPMULUDQ konst4<>+K_m2(SB), Y10, Y12
	VPMULUDQ konst4<>+K_m2(SB), Y11, Y11
	VPMULUDQ konst4<>+K_m2hi(SB), Y10, Y13
	VPADDQ Y13, Y11, Y11
	VPSLLQ $32, Y11, Y11
	VPADDQ Y11, Y12, Y10                 // x *= m2
	VPSRLQ $31, Y10, Y11
	VPXOR Y11, Y10, Y10                  // x ^= x>>31
	VPSRLQ $11, Y10, Y10                 // v = x>>11 (< 2^53)
	VPAND konst4<>+K_mask32(SB), Y10, Y11
	VPSRLQ $32, Y10, Y12
	VPOR konst4<>+K_magic(SB), Y11, Y11
	VPOR konst4<>+K_magic(SB), Y12, Y12
	VSUBPD konst4<>+K_magic(SB), Y11, Y11 // double(lo), exact
	VSUBPD konst4<>+K_magic(SB), Y12, Y12 // double(hi), exact
	VMULPD konst4<>+K_two32(SB), Y12, Y12 // *2^32, exact (hi <= 2^21)
	VADDPD Y11, Y12, Y0                   // double(v), exact
	VPADDQ konst4<>+K_four(SB), Y8, Y8    // advance t lanes

	// ---- u = conv * 2^-53 ----
	VMULPD konst4<>+K_inv53(SB), Y0, Y0

	// ---- central-branch mask: plow <= u <= 1-plow ----
	VCMPPD $0x1D, konst4<>+K_plow(SB), Y0, Y3   // u >= plow (GE_OQ)
	VCMPPD $0x12, konst4<>+K_phigh(SB), Y0, Y1  // u <= 1-plow (LE_OQ)
	VANDPD Y1, Y3, Y3
	VMOVMSKPD Y3, R13

	// ---- Acklam central branch (mul/add, no fusion, one divide) ----
	VSUBPD konst4<>+K_half(SB), Y0, Y1          // q = u - 0.5
	VMULPD Y1, Y1, Y2                           // r = q*q
	VMOVUPD konst4<>+K_a0(SB), Y4
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a1(SB), Y4, Y4            // a0*r + a1
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a2(SB), Y4, Y4
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a3(SB), Y4, Y4
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a4(SB), Y4, Y4
	VMULPD Y2, Y4, Y4
	VADDPD konst4<>+K_a5(SB), Y4, Y4
	VMULPD Y1, Y4, Y4                           // numerator * q
	VMOVUPD konst4<>+K_b0(SB), Y5
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_b1(SB), Y5, Y5            // b0*r + b1
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_b2(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_b3(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_b4(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD konst4<>+K_one(SB), Y5, Y5           // denominator
	VDIVPD Y5, Y4, Y4                           // norm = (num*q) / den

	// ---- x = 0.3 * norm ----
	VMULPD konst4<>+K_c03(SB), Y4, Y4

	// ---- exp(x): the avxfma sequence of math.archExp ----
	VMULPD konst4<>+K_log2e(SB), Y4, Y5         // x * log2(e)
	VCVTPD2DQY Y5, X6                           // e (round to nearest int32)
	VCVTDQ2PD X6, Y5                            // float64(e)
	VFNMADD231PD konst4<>+K_ln2u(SB), Y5, Y4    // x -= e*ln2u (fused)
	VFNMADD231PD konst4<>+K_ln2l(SB), Y5, Y4    // x -= e*ln2l (fused)
	VMULPD konst4<>+K_sixt(SB), Y4, Y4          // x *= 0.0625
	VMOVUPD konst4<>+K_c9(SB), Y7
	VFMADD213PD konst4<>+K_c8(SB), Y4, Y7       // h = h*x + c (fused), Taylor chain
	VFMADD213PD konst4<>+K_c7(SB), Y4, Y7
	VFMADD213PD konst4<>+K_c6(SB), Y4, Y7
	VFMADD213PD konst4<>+K_c5(SB), Y4, Y7
	VFMADD213PD konst4<>+K_c4(SB), Y4, Y7
	VFMADD213PD konst4<>+K_half(SB), Y4, Y7     // ... + 0.5
	VFMADD213PD konst4<>+K_one(SB), Y4, Y7      // ... + 1.0
	VMULPD Y7, Y4, Y4                           // x *= h
	VADDPD konst4<>+K_two(SB), Y4, Y5           // w = x + 2
	VMULPD Y5, Y4, Y4                           // x *= w (un-reduce, 4 rounds)
	VADDPD konst4<>+K_two(SB), Y4, Y5
	VMULPD Y5, Y4, Y4
	VADDPD konst4<>+K_two(SB), Y4, Y5
	VMULPD Y5, Y4, Y4
	VADDPD konst4<>+K_two(SB), Y4, Y5
	VFMADD213PD konst4<>+K_one(SB), Y5, Y4      // x = x*w + 1 (fused)
	VPADDD konst4<>+K_bias(SB), X6, X6          // biased exponent
	VPMOVSXDQ X6, Y5
	VPSLLQ $52, Y5, Y5
	VMULPD Y5, Y4, Y4                           // x *= 2^e

	// ---- blend tail-branch lanes to zero, fold into acc, spill ----
	VANDPD Y3, Y4, Y4
	VMOVUPD (SI), Y5
	VMULPD Y15, Y5, Y5              // avg * prof[i]
	VMULPD Y4, Y5, Y5               // ... * j[i] (+0.0 on spilled lanes)
	VMOVUPD (DI), Y6
	VADDPD Y5, Y6, Y6               // acc[i] + val
	VMOVUPD Y6, (DI)
	XORL $0xF, R13
	JZ   fnext
	TESTL $1, R13
	JZ   flane1
	MOVL R12, AX
	MOVL AX, (R10)(R11*4)
	INCQ R11
flane1:
	TESTL $2, R13
	JZ   flane2
	LEAQ 1(R12), AX
	MOVL AX, (R10)(R11*4)
	INCQ R11
flane2:
	TESTL $4, R13
	JZ   flane3
	LEAQ 2(R12), AX
	MOVL AX, (R10)(R11*4)
	INCQ R11
flane3:
	TESTL $8, R13
	JZ   fnext
	LEAQ 3(R12), AX
	MOVL AX, (R10)(R11*4)
	INCQ R11
fnext:
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $4, R12
	JMP  fquad

fdone:
	MOVQ R11, ret+56(FP)
	VZEROUPPER
	RET

// func accumRow4(acc, prof, j *float64, n int, avg float64)
// acc[i] += (avg*prof[i])*j[i]; n must be a positive multiple of 4.
TEXT ·accumRow4(SB), NOSPLIT, $0-40
	MOVQ acc+0(FP), DI
	MOVQ prof+8(FP), SI
	MOVQ j+16(FP), DX
	MOVQ n+24(FP), CX
	VBROADCASTSD avg+32(FP), Y0
	XORQ AX, AX
accloop:
	CMPQ AX, CX
	JGE  accdone
	VMOVUPD (SI)(AX*8), Y1
	VMULPD Y0, Y1, Y1               // avg * prof[i]
	VMOVUPD (DX)(AX*8), Y2
	VMULPD Y2, Y1, Y1               // ... * j[i]
	VMOVUPD (DI)(AX*8), Y2
	VADDPD Y1, Y2, Y2               // acc[i] + val
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  accloop
accdone:
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
