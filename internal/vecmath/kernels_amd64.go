//go:build amd64

package vecmath

// hasKernels reports whether the AVX2+FMA row kernels may run on this
// CPU. FMA support is load-bearing twice over: the kernels replicate the
// FMA instruction sequence of math.Exp's amd64 assembly, which that code
// only takes when the CPU has AVX and FMA — so requiring both keeps the
// vector and scalar paths on the *same* exp algorithm.
var hasKernels = detectKernels()

func detectKernels() bool {
	// CPUID leaf 1: ECX bit 12 = FMA, bit 27 = OSXSAVE, bit 28 = AVX.
	_, _, ecx1, _ := cpuid(1, 0)
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1-2: the OS saves XMM and YMM state across context
	// switches (without this, AVX registers are unusable in practice).
	if xgetbv0()&0x6 != 0x6 {
		return false
	}
	// CPUID leaf 7: EBX bit 5 = AVX2.
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// cpuid executes the CPUID instruction (implemented in assembly).
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0.
func xgetbv0() uint64

// jitterRow4 computes j[i] = Jitter(base, t0+i) for i in [0, n) with
// n a positive multiple of 4. Lanes whose uniform value falls outside
// the Acklam central branch are zeroed and their indices appended to
// spill (which must have room for n entries); the return value is the
// number of spilled lanes.
func jitterRow4(j *float64, n int, base uint64, t0 int, spill *int32) int

// accumRow4 performs acc[i] += (avg*prof[i])*j[i] for i in [0, n) with
// n a positive multiple of 4.
func accumRow4(acc, prof, j *float64, n int, avg float64)

// jitterAccumRow4 fuses jitterRow4 and accumRow4 for the serial fold:
// acc[i] += (avg*prof[i])*Jitter(base, t0+i) for central lanes, +0.0 for
// spilled lanes (recorded in spill for the caller to patch). n must be a
// positive multiple of 4.
func jitterAccumRow4(acc, prof *float64, avg float64, n int, base uint64, t0 int, spill *int32) int
