package asindex

import (
	"math/rand"
	"reflect"
	"testing"

	"remotepeering/internal/topo"
)

func TestIndexRoundTrip(t *testing.T) {
	asns := []topo.ASN{31, 10, 500, 10, 1000, 31, 42}
	ix := New(asns)
	if ix.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (dedup)", ix.Len())
	}
	want := []topo.ASN{10, 31, 42, 500, 1000}
	for i, a := range want {
		id, ok := ix.ID(a)
		if !ok || id != int32(i) {
			t.Errorf("ID(%d) = (%d,%v), want (%d,true)", a, id, ok, i)
		}
		if ix.ASN(int32(i)) != a {
			t.Errorf("ASN(%d) = %d, want %d", i, ix.ASN(int32(i)), a)
		}
	}
	if _, ok := ix.ID(999); ok {
		t.Error("ID(999) reported indexed")
	}
	ids := ix.IDs([]topo.ASN{1000, 10, 999, 10})
	if !reflect.DeepEqual(ids, []int32{0, 4}) {
		t.Errorf("IDs = %v, want [0 4]", ids)
	}
}

// TestBitSetAgainstMap cross-checks every BitSet operation against a naive
// map implementation on randomised universes, including the float
// reductions whose addition order must match a sorted-key scan exactly.
func TestBitSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		for i := range w1 {
			w1[i] = rng.NormFloat64()
			w2[i] = rng.ExpFloat64()
		}
		a, b := NewBitSet(n), NewBitSet(n)
		am, bm := map[int32]bool{}, map[int32]bool{}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				a.Set(int32(i))
				am[int32(i)] = true
			}
			if rng.Float64() < 0.4 {
				b.Set(int32(i))
				bm[int32(i)] = true
			}
		}
		if a.Count() != len(am) {
			t.Fatalf("Count = %d, want %d", a.Count(), len(am))
		}
		// AndNotCount and AndNotSum vs the map difference, summed in
		// ascending order (the order contract).
		diff := 0
		var wantSum, wantS1, wantS2 float64
		var prev int32 = -1
		a.ForEach(func(id int32) {
			if id <= prev {
				t.Fatalf("ForEach out of order: %d after %d", id, prev)
			}
			prev = id
			if !am[id] {
				t.Fatalf("ForEach visited unset id %d", id)
			}
		})
		for i := int32(0); i < int32(n); i++ {
			if am[i] && !bm[i] {
				diff++
				wantSum += w1[i]
				wantS1 += w1[i]
				wantS2 += w2[i]
			}
		}
		if got := a.AndNotCount(b); got != diff {
			t.Fatalf("AndNotCount = %d, want %d", got, diff)
		}
		if got := a.AndNotSum(b, w1); got != wantSum {
			t.Fatalf("AndNotSum = %v, want %v", got, wantSum)
		}
		if s1, s2 := a.AndNotSum2(b, w1, w2); s1 != wantS1 || s2 != wantS2 {
			t.Fatalf("AndNotSum2 = (%v,%v), want (%v,%v)", s1, s2, wantS1, wantS2)
		}
		// Sum/Sum2 over the union must equal the ascending-order scan.
		u := a.Clone()
		u.Or(b)
		var us, us1, us2 float64
		for i := int32(0); i < int32(n); i++ {
			if am[i] || bm[i] {
				us += w1[i]
				us1 += w1[i]
				us2 += w2[i]
			}
		}
		if got := u.Sum(w1); got != us {
			t.Fatalf("Sum = %v, want %v", got, us)
		}
		if s1, s2 := u.Sum2(w1, w2); s1 != us1 || s2 != us2 {
			t.Fatalf("Sum2 = (%v,%v), want (%v,%v)", s1, s2, us1, us2)
		}
		// And + Clear.
		inter := a.Clone()
		inter.And(b)
		wantInter := 0
		for i := int32(0); i < int32(n); i++ {
			if am[i] && bm[i] {
				wantInter++
				if !inter.Has(i) {
					t.Fatalf("And missing id %d", i)
				}
			}
		}
		if inter.Count() != wantInter {
			t.Fatalf("And count = %d, want %d", inter.Count(), wantInter)
		}
		inter.Clear()
		if inter.Count() != 0 {
			t.Fatal("Clear left bits set")
		}
	}
}

func TestSetList(t *testing.T) {
	b := NewBitSet(130)
	b.SetList([]int32{0, 63, 64, 129, 0})
	for _, id := range []int32{0, 63, 64, 129} {
		if !b.Has(id) {
			t.Errorf("missing id %d", id)
		}
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
}
