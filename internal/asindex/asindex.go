// Package asindex is the dense data plane of the Section 4 analyses: it
// assigns every ASN of a generated world a contiguous int32 id (in
// ascending ASN order) and provides an allocation-free BitSet over those
// ids. The id order is load-bearing — iterating a BitSet visits ids, and
// therefore ASNs, in ascending order, which is exactly the fixed
// floating-point addition order the determinism suite pins. Swapping a
// map[topo.ASN]bool for a BitSet therefore changes the cost of the set
// algebra (word-parallel unions, popcount scans) but never its result.
package asindex

import (
	"fmt"
	"math/bits"
	"sort"

	"remotepeering/internal/topo"
)

// Index is the bidirectional ASN ↔ dense-id mapping. It is immutable after
// New, so concurrent readers need no locking.
type Index struct {
	asns []topo.ASN
	ids  map[topo.ASN]int32
}

// New builds an index over the given ASNs. The input is copied, sorted,
// and de-duplicated; ids are assigned in ascending ASN order.
func New(asns []topo.ASN) *Index {
	sorted := make([]topo.ASN, len(asns))
	copy(sorted, asns)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	dedup := sorted[:0]
	for i, a := range sorted {
		if i == 0 || a != sorted[i-1] {
			dedup = append(dedup, a)
		}
	}
	ix := &Index{asns: dedup, ids: make(map[topo.ASN]int32, len(dedup))}
	for i, a := range dedup {
		ix.ids[a] = int32(i)
	}
	return ix
}

// FromSorted builds an index over an already strictly-ascending ASN list
// without re-sorting — the attach path of the snapshot layer, where the
// persisted dense-id plane is the sorted universe by construction. The
// input is adopted, not copied, so it must never be mutated afterwards
// (mmap-backed planes are read-only anyway). An unsorted or duplicated
// input is rejected: dense-id order is load-bearing for the determinism
// suite's floating-point addition order.
func FromSorted(asns []topo.ASN) (*Index, error) {
	for i := 1; i < len(asns); i++ {
		if asns[i] <= asns[i-1] {
			return nil, fmt.Errorf("asindex: input not strictly ascending at %d (%d after %d)", i, asns[i], asns[i-1])
		}
	}
	ix := &Index{asns: asns, ids: make(map[topo.ASN]int32, len(asns))}
	for i, a := range asns {
		ix.ids[a] = int32(i)
	}
	return ix, nil
}

// Len returns the number of indexed ASNs (the id universe size).
func (ix *Index) Len() int { return len(ix.asns) }

// ID returns the dense id of asn and whether it is indexed.
func (ix *Index) ID(asn topo.ASN) (int32, bool) {
	id, ok := ix.ids[asn]
	return id, ok
}

// ASN returns the ASN behind a dense id. Ids come only from this index, so
// out-of-range ids are a caller bug and panic via the bounds check.
func (ix *Index) ASN(id int32) topo.ASN { return ix.asns[id] }

// IDs maps a list of ASNs to their sorted dense ids, skipping unindexed
// ASNs. Because ids are assigned in ascending ASN order, the result is the
// id image of the sorted, de-duplicated input.
func (ix *Index) IDs(asns []topo.ASN) []int32 {
	out := make([]int32, 0, len(asns))
	for _, a := range asns {
		if id, ok := ix.ids[a]; ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, id := range out {
		if i == 0 || id != out[i-1] {
			dedup = append(dedup, id)
		}
	}
	return dedup
}

// NewBitSet returns an empty set sized for this index's id universe.
func (ix *Index) NewBitSet() *BitSet { return NewBitSet(ix.Len()) }

// BitSet is a fixed-capacity set of dense ids backed by uint64 words. All
// iteration orders are ascending-id (= ascending ASN), so floating-point
// reductions over a BitSet have a scheduling-independent addition order.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty set with capacity for ids [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the id capacity the set was created with.
func (b *BitSet) Cap() int { return b.n }

// Set adds id to the set.
func (b *BitSet) Set(id int32) { b.words[id>>6] |= 1 << (uint(id) & 63) }

// Has reports whether id is in the set.
func (b *BitSet) Has(id int32) bool {
	return b.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// SetList adds every id in the (arbitrary-order) list.
func (b *BitSet) SetList(ids []int32) {
	for _, id := range ids {
		b.words[id>>6] |= 1 << (uint(id) & 63)
	}
}

// Clear empties the set in place, keeping its capacity.
func (b *BitSet) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns an independent copy.
func (b *BitSet) Clone() *BitSet {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &BitSet{words: w, n: b.n}
}

// Or unions o into b. The sets must come from the same universe.
func (b *BitSet) Or(o *BitSet) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// And intersects b with o in place.
func (b *BitSet) And(o *BitSet) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Count returns the set cardinality via popcount.
func (b *BitSet) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndNotCount returns |b \ mask| without materialising the difference.
func (b *BitSet) AndNotCount(mask *BitSet) int {
	n := 0
	for i, w := range b.words {
		n += bits.OnesCount64(w &^ mask.words[i])
	}
	return n
}

// ForEach visits the set ids in ascending order.
func (b *BitSet) ForEach(fn func(id int32)) {
	for i, w := range b.words {
		base := int32(i) << 6
		for w != 0 {
			fn(base + int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// Sum accumulates weight[id] over the set ids in ascending order — the
// same addition order as summing over the sorted ASN list.
func (b *BitSet) Sum(weight []float64) float64 {
	var s float64
	for i, w := range b.words {
		base := int32(i) << 6
		for w != 0 {
			s += weight[base+int32(bits.TrailingZeros64(w))]
			w &= w - 1
		}
	}
	return s
}

// Sum2 accumulates two weight planes in one ascending-order scan.
func (b *BitSet) Sum2(w1, w2 []float64) (s1, s2 float64) {
	for i, w := range b.words {
		base := int32(i) << 6
		for w != 0 {
			id := base + int32(bits.TrailingZeros64(w))
			s1 += w1[id]
			s2 += w2[id]
			w &= w - 1
		}
	}
	return s1, s2
}

// AndNotSum accumulates weight[id] over b \ mask in ascending id order —
// the marginal-gain scan of the greedy expansions: the ids an IXP would
// newly cover, summed in the exact order the map-based implementation
// summed its sorted candidate list.
func (b *BitSet) AndNotSum(mask *BitSet, weight []float64) float64 {
	var s float64
	for i, w := range b.words {
		w &^= mask.words[i]
		base := int32(i) << 6
		for w != 0 {
			s += weight[base+int32(bits.TrailingZeros64(w))]
			w &= w - 1
		}
	}
	return s
}

// AndNotSum2 is AndNotSum over two weight planes in one scan.
func (b *BitSet) AndNotSum2(mask *BitSet, w1, w2 []float64) (s1, s2 float64) {
	for i, w := range b.words {
		w &^= mask.words[i]
		base := int32(i) << 6
		for w != 0 {
			id := base + int32(bits.TrailingZeros64(w))
			s1 += w1[id]
			s2 += w2[id]
			w &= w - 1
		}
	}
	return s1, s2
}
