// Package netflow reproduces the traffic side of Section 4.1: a month of
// 5-minute NetFlow records collected at the border routers of the
// RedIRIS-analogue NREN, joined with BGP paths. The generator produces the
// published shape of the dataset rather than its (proprietary) bytes:
//
//   - 29,570-ish networks exchanging transit traffic with RedIRIS, with
//     rank-ordered contributions spanning ~1 Gbps down to a few bps and the
//     characteristic bend near rank 20,000 (Figure 5a);
//   - pronounced diurnal and weekly periodicity, stronger inbound than
//     outbound (Figure 5b);
//   - AS-level paths for every flow, classifying each network's association
//     as origin, destination, or transient (Figure 6), and marking which
//     flows ride the two tier-1 transit providers;
//   - content-heavy top contributors (the Microsoft/Yahoo/CDN analogues).
package netflow

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"remotepeering/internal/asindex"
	"remotepeering/internal/bgp"
	"remotepeering/internal/parallel"
	"remotepeering/internal/stats"
	"remotepeering/internal/topo"
	"remotepeering/internal/worldgen"
)

// Config parameterises collection. Zero values take paper-scale defaults.
type Config struct {
	// Seed drives the traffic randomness (independent from the world's).
	Seed int64
	// Intervals is the number of 5-minute samples (default 8064 — the
	// paper's February 2013 month: 28 days × 288).
	Intervals int
	// IntervalLength is the metering granularity (default 5 minutes).
	IntervalLength time.Duration
	// TotalInboundBps and TotalOutboundBps set the average
	// transit-provider traffic level. Defaults: 8 Gbps in, 4.5 Gbps out
	// (inbound dominates, as in the paper).
	TotalInboundBps  float64
	TotalOutboundBps float64
	// PhaseHours rotates the diurnal/weekly profile by the given number
	// of hours (the scenario engine's diurnal-shift perturbation: a
	// traffic mix whose peak moves relative to the billing day). Zero
	// keeps the generated profile exactly as-is.
	PhaseHours float64
	// Workers bounds the parallelism of collection and series synthesis
	// (0 = one per CPU). The dataset is byte-identical for every value.
	Workers int
}

// Default average transit-provider traffic levels (the paper's regime:
// inbound dominates). Exported so the scenario engine can scale the
// defaults rather than silently replacing them.
const (
	DefaultInboundBps  = 8e9
	DefaultOutboundBps = 4.5e9
)

func (c Config) withDefaults() Config {
	if c.Intervals == 0 {
		c.Intervals = 8064
	}
	if c.IntervalLength == 0 {
		c.IntervalLength = 5 * time.Minute
	}
	if c.TotalInboundBps == 0 {
		c.TotalInboundBps = DefaultInboundBps
	}
	if c.TotalOutboundBps == 0 {
		c.TotalOutboundBps = DefaultOutboundBps
	}
	return c
}

// Entry is one network's aggregate association with the RedIRIS border
// traffic.
type Entry struct {
	ASN topo.ASN
	// AvgInBps is the network's average contribution as an origin of
	// inbound traffic; AvgOutBps as a destination of outbound traffic.
	AvgInBps  float64
	AvgOutBps float64
	// Transit marks flows that ride one of the two tier-1 transit
	// providers (only such traffic is offloadable). Non-transit entries
	// arrive via GÉANT, an existing CDN peering, or a home-IXP peering.
	Transit bool
	// Path is the AS path from the network to RedIRIS (inbound
	// direction); outbound is assumed symmetric.
	Path []topo.ASN
}

// Dataset is the collected month of border traffic.
type Dataset struct {
	Cfg     Config
	Entries []Entry

	byASN map[topo.ASN]int
	// transient[a] accumulates the in+out average rates of flows whose
	// path crosses a as an intermediary.
	transient   map[topo.ASN]float64
	transientIn map[topo.ASN]float64
	transOut    map[topo.ASN]float64
	seed        int64

	// ix is the world's dense ASN index, shared so set-valued queries
	// (SeriesTotalSet) can take bitsets instead of maps.
	ix *asindex.Index
	// transitOnce/transitCache memoise TransitEntries: the filtered slice
	// is assembled once and shared (callers must not mutate it).
	transitOnce  sync.Once
	transitCache []Entry
	// profOnce/profIn/profOut cache the diurnal profile per interval for
	// the two amplitudes (0.55 inbound, 0.25 outbound): the profile is a
	// pure function of the interval index, so the per-sample trigonometry
	// of diurnalFactor collapses to a table lookup in the series hot loop.
	profOnce sync.Once
	profIn   []float64
	profOut  []float64
}

// Collect builds the dataset from the world.
func Collect(w *worldgen.World, cfg Config) (*Dataset, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("netflow: negative Workers %d (use 0 for one per CPU)", cfg.Workers)
	}
	cfg = cfg.withDefaults()
	src := stats.NewSource(cfg.Seed).Split("netflow")

	rib, err := bgp.ComputeRIB(w.Graph, w.RedIRIS)
	if err != nil {
		return nil, fmt.Errorf("netflow: %w", err)
	}

	type cand struct {
		asn    topo.ASN
		weight float64
	}
	var cands []cand
	for _, asn := range w.Graph.ASNs() {
		if asn == w.RedIRIS {
			continue
		}
		if !rib.Reachable(asn) {
			continue
		}
		n := w.Graph.Network(asn)
		cands = append(cands, cand{asn, contributionWeight(n, src)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].weight != cands[j].weight {
			return cands[i].weight > cands[j].weight
		}
		return cands[i].asn < cands[j].asn
	})

	ix := w.Index
	if ix == nil {
		ix = asindex.New(w.Graph.ASNs())
	}
	ds := &Dataset{
		Cfg:         cfg,
		byASN:       make(map[topo.ASN]int),
		transient:   make(map[topo.ASN]float64),
		transientIn: make(map[topo.ASN]float64),
		transOut:    make(map[topo.ASN]float64),
		seed:        cfg.Seed,
		ix:          ix,
	}

	// Rank-based contribution with the Figure 5a bend near rank 20,000.
	const bend = 20000
	rawRate := func(rank int) float64 {
		r := float64(rank + 6)
		v := math.Pow(r, -1.4)
		if rank > bend {
			v *= math.Pow(float64(rank)/bend, -5)
		}
		return v
	}
	var totalRaw float64
	for i := range cands {
		totalRaw += rawRate(i + 1)
	}

	// Per-candidate entry construction — dominated by AS-path extraction
	// from the RIB — is pure per index (the RIB and graph are read-only by
	// now), so it fans out with an order-stable merge.
	ds.Entries = parallel.Map(cfg.Workers, len(cands), func(i int) Entry {
		c := cands[i]
		n := w.Graph.Network(c.asn)
		share := rawRate(i+1) / totalRaw
		inFrac := inboundFraction(n.Kind)
		path := rib.Path(c.asn)
		entry := Entry{
			ASN:       c.asn,
			AvgInBps:  share * cfg.TotalInboundBps * inFrac / 0.64,
			AvgOutBps: share * cfg.TotalOutboundBps * (1 - inFrac) / 0.36,
			Path:      path,
		}
		if len(path) >= 2 {
			gateway := path[len(path)-2]
			entry.Transit = gateway == w.Transit1 || gateway == w.Transit2
		}
		return entry
	})
	for i, e := range ds.Entries {
		ds.byASN[e.ASN] = i
	}

	// Normalise so transit totals hit the configured levels exactly.
	var sumIn, sumOut float64
	for _, e := range ds.Entries {
		if e.Transit {
			sumIn += e.AvgInBps
			sumOut += e.AvgOutBps
		}
	}
	if sumIn <= 0 || sumOut <= 0 {
		return nil, fmt.Errorf("netflow: degenerate traffic totals (in=%v out=%v)", sumIn, sumOut)
	}
	inScale := cfg.TotalInboundBps / sumIn
	outScale := cfg.TotalOutboundBps / sumOut
	for i := range ds.Entries {
		ds.Entries[i].AvgInBps *= inScale
		ds.Entries[i].AvgOutBps *= outScale
	}

	// Transient accounting for Figure 6: every AS strictly inside a path
	// carries that flow as an intermediary. The accumulation merges
	// per-block partial maps in fixed block order, so the floating-point
	// sums are bit-identical for every worker count.
	type transientMaps struct {
		total, in, out map[topo.ASN]float64
	}
	blocks := parallel.Blocks(len(ds.Entries), 512)
	parts := parallel.Map(cfg.Workers, len(blocks), func(bi int) transientMaps {
		r := blocks[bi]
		p := transientMaps{
			total: make(map[topo.ASN]float64),
			in:    make(map[topo.ASN]float64),
			out:   make(map[topo.ASN]float64),
		}
		for _, e := range ds.Entries[r.Lo:r.Hi] {
			for _, mid := range e.Path[1:max(1, len(e.Path)-1)] {
				p.total[mid] += e.AvgInBps + e.AvgOutBps
				p.in[mid] += e.AvgInBps
				p.out[mid] += e.AvgOutBps
			}
		}
		return p
	})
	for _, p := range parts {
		for a, v := range p.total {
			ds.transient[a] += v
		}
		for a, v := range p.in {
			ds.transientIn[a] += v
		}
		for a, v := range p.out {
			ds.transOut[a] += v
		}
	}
	return ds, nil
}

// contributionWeight ranks networks for contribution assignment: content
// and CDNs carry the most traffic toward an NREN, followed by transit
// wholesale, with leaf networks weighted by their regional affinity to
// Spain (South American networks loom large in RedIRIS traffic, which is
// what makes the Terremark-analogue a top offload IXP in Figure 7).
func contributionWeight(n *topo.Network, src *stats.Source) float64 {
	var base float64
	switch n.Kind {
	case topo.KindContent:
		base = 120 / float64(1+n.SizeRank)
	case topo.KindCDN:
		base = 90 / float64(1+n.SizeRank)
	case topo.KindTier1:
		base = 40
	case topo.KindTransit:
		base = 25 / math.Pow(float64(1+n.SizeRank), 0.8)
	case topo.KindNREN:
		// Research backbones swap bulk datasets with the NREN; the
		// GÉANT members among them do not ride transit anyway.
		base = 400 / math.Pow(float64(1+n.SizeRank), 0.6)
	default:
		base = 8 / math.Pow(float64(1+n.SizeRank), 0.25)
	}
	base *= cityAffinity(n.City)
	return base * src.LogNormal(0, 0.5)
}

// cityAffinity weights a network's traffic affinity with the Spanish NREN.
func cityAffinity(city string) float64 {
	switch city {
	case "Madrid", "Barcelona":
		return 3
	case "Sao Paolo", "Rio", "Porto Alegre", "Curitiba", "Buenos Aires",
		"Bogota", "Lima", "Santiago", "Caracas", "Mexico City",
		"Montevideo", "Asuncion", "Brasilia", "Recife", "Fortaleza",
		"Salvador", "Belo Horizonte", "Cordoba", "Mendoza":
		return 2.2
	case "Lisbon", "Paris", "London", "Amsterdam", "Frankfurt", "Milan",
		"Marseille", "Lyon":
		return 1.3
	default:
		return 1
	}
}

// inboundFraction is the share of a network's combined contribution that is
// inbound (content flows down toward the NREN's campuses).
func inboundFraction(k topo.NetworkKind) float64 {
	switch k {
	case topo.KindContent, topo.KindCDN:
		return 0.85
	case topo.KindNREN:
		return 0.66
	case topo.KindHosting:
		return 0.7
	case topo.KindTransit, topo.KindTier1:
		return 0.6
	default:
		return 0.55
	}
}

// Entry returns the record for asn, if present.
func (d *Dataset) Entry(asn topo.ASN) (Entry, bool) {
	i, ok := d.byASN[asn]
	if !ok {
		return Entry{}, false
	}
	return d.Entries[i], true
}

// TransitEntries returns only the entries riding the transit providers —
// the paper's 29,570-network dataset. The filtered slice is built once and
// cached (it is consulted inside benchmark and analysis loops); callers
// must treat it as read-only.
func (d *Dataset) TransitEntries() []Entry {
	d.transitOnce.Do(func() {
		out := make([]Entry, 0, len(d.Entries))
		for _, e := range d.Entries {
			if e.Transit {
				out = append(out, e)
			}
		}
		d.transitCache = out
	})
	return d.transitCache
}

// TransitTotals returns the average transit-provider traffic in each
// direction. The sum runs in entry order (the same order TransitEntries
// preserves), so the totals are bit-identical to the seed implementation.
func (d *Dataset) TransitTotals() (inBps, outBps float64) {
	for i := range d.TransitEntries() {
		e := &d.transitCache[i]
		inBps += e.AvgInBps
		outBps += e.AvgOutBps
	}
	return inBps, outBps
}

// Transient returns the combined in+out average rate crossing asn as an
// intermediary, plus the directional splits (Figure 6's "transient
// traffic").
func (d *Dataset) Transient(asn topo.ASN) (total, in, out float64) {
	return d.transient[asn], d.transientIn[asn], d.transOut[asn]
}

// hash01 derives a deterministic uniform [0,1) value from the dataset
// seed, an ASN, an interval index, and a direction tag, giving O(1) random
// access into the synthetic time series without storing it. It is split
// into hashBase (interval-independent, hoistable out of interval loops)
// and hashFinish (the splitmix64 finaliser); the XOR composition keeps the
// input word — and therefore every sample — bit-identical to the unsplit
// form.
func (d *Dataset) hash01(asn topo.ASN, interval int, dir uint64) float64 {
	return hashFinish(d.hashBase(asn, dir) ^ uint64(uint32(interval)))
}

// hashBase is the per-(entry, direction) constant of hash01.
func (d *Dataset) hashBase(asn topo.ASN, dir uint64) uint64 {
	return uint64(d.seed)*0x9E3779B97F4A7C15 ^ uint64(asn)<<32 ^ dir<<61
}

// hashFinish applies the splitmix64 finaliser and maps to [0,1). The
// 2^-53 scale is applied as a multiplication: the reciprocal of a power
// of two is exact, so the product is bit-identical to the division it
// replaces, without the division latency in the series hot loop.
func hashFinish(x uint64) float64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) * (1.0 / float64(1<<53))
}

// diurnalFactor is the multiplicative time-of-day/day-of-week profile. The
// epoch is midnight Monday, rotated by phase. amplitude scales the swing;
// inbound traffic uses a larger amplitude than outbound, giving
// Figure 5b's pronounced inbound periodicity.
func diurnalFactor(interval int, intervalLen time.Duration, amplitude float64, phase time.Duration) float64 {
	at := time.Duration(interval)*intervalLen + phase
	if at < 0 {
		const week = 7 * 24 * time.Hour
		at = at%week + week
	}
	const day = 24 * time.Hour
	const week = 7 * day
	hour := float64(at%day) / float64(time.Hour)
	dow := int(at%week) / int(day)
	// Busy early evening, quiet pre-dawn.
	level := math.Cos(2 * math.Pi * (hour - 19) / 24)
	weekend := 1.0
	if dow >= 5 {
		weekend = 0.7
	}
	return weekend * (1 + amplitude*level)
}

// Rate returns the network's metered traffic in the given 5-minute
// interval (bps), inbound and outbound. Deterministic in (seed, asn,
// interval).
func (d *Dataset) Rate(asn topo.ASN, interval int) (inBps, outBps float64) {
	i, ok := d.byASN[asn]
	if !ok {
		return 0, 0
	}
	return d.entryRate(&d.Entries[i], interval)
}

// profiles returns the cached per-interval diurnal factors for the two
// amplitudes (inbound 0.55, outbound 0.25). Both tables are built once,
// lazily, by evaluating diurnalFactor itself — so a table lookup is
// bit-identical to the inline call it replaces.
func (d *Dataset) profiles() (profIn, profOut []float64) {
	d.profOnce.Do(func() {
		phase := d.phase()
		d.profIn = make([]float64, d.Cfg.Intervals)
		d.profOut = make([]float64, d.Cfg.Intervals)
		for t := range d.profIn {
			d.profIn[t] = diurnalFactor(t, d.Cfg.IntervalLength, 0.55, phase)
			d.profOut[t] = diurnalFactor(t, d.Cfg.IntervalLength, 0.25, phase)
		}
	})
	return d.profIn, d.profOut
}

// phase is the dataset's diurnal-profile rotation.
func (d *Dataset) phase() time.Duration {
	return time.Duration(d.Cfg.PhaseHours * float64(time.Hour))
}

// entryRate is Rate without the index lookup, for callers already holding
// the entry.
func (d *Dataset) entryRate(e *Entry, interval int) (inBps, outBps float64) {
	profIn, profOut := d.profiles()
	din, dout := d.diurnalAt(profIn, interval, 0.55), d.diurnalAt(profOut, interval, 0.25)
	// Multiplicative lognormal jitter, direction-specific.
	jIn := math.Exp(0.3 * normFromUniform(d.hash01(e.ASN, interval, 1)))
	jOut := math.Exp(0.3 * normFromUniform(d.hash01(e.ASN, interval, 2)))
	inBps = e.AvgInBps * din * jIn
	outBps = e.AvgOutBps * dout * jOut
	return inBps, outBps
}

// diurnalAt reads the cached profile when the interval is inside the
// dataset's month and falls back to the direct evaluation for callers
// probing beyond it. The phase is derived only on the fallback path, so
// the hot path stays a bare table lookup.
func (d *Dataset) diurnalAt(prof []float64, interval int, amplitude float64) float64 {
	if interval >= 0 && interval < len(prof) {
		return prof[interval]
	}
	return diurnalFactor(interval, d.Cfg.IntervalLength, amplitude, d.phase())
}

// Beasley-Springer-Moro style rational-approximation coefficients for
// normFromUniform, hoisted to package level: a per-call composite literal
// would re-materialise all 21 words on every one of the hundreds of
// millions of calls the month-long series synthesis makes.
var (
	normA = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	normB = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	normC = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	normD = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
)

// normFromUniform converts a uniform (0,1) value into a standard normal
// deviate via the inverse-CDF approximation of Acklam (sufficient for
// traffic jitter).
func normFromUniform(u float64) float64 {
	if u <= 0 {
		u = 1e-12
	}
	if u >= 1 {
		u = 1 - 1e-12
	}
	a, b, c, dd := &normA, &normB, &normC, &normD
	const plow = 0.02425
	switch {
	case u < plow:
		q := math.Sqrt(-2 * math.Log(u))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	case u > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-u))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	default:
		q := u - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// SeriesTotal sums the per-interval rate over a set of networks, returning
// inbound and outbound time series (Figure 5b's curves). A nil set means
// all transit entries.
//
// This is the heaviest synthesis in the pipeline (entries × intervals rate
// evaluations for a month of 5-minute samples), so it shards the interval
// axis across workers. Every interval's sum is computed entirely within
// one shard, iterating entries in the same order a serial run would, so
// the series is bit-identical for every worker count.
func (d *Dataset) SeriesTotal(set map[topo.ASN]bool) (in, out []float64) {
	active := make([]*Entry, 0, len(d.Entries))
	for i := range d.Entries {
		e := &d.Entries[i]
		if !e.Transit {
			continue
		}
		if set != nil && !set[e.ASN] {
			continue
		}
		active = append(active, e)
	}
	return d.seriesOver(active)
}

// SeriesTotalSet is SeriesTotal with the selection given as a dense bitset
// over the world's AS index — the allocation-light path the offload
// analyses use. A nil set means all transit entries. Because the entry
// iteration order is the same as SeriesTotal's (entry order, not set
// order), the two overloads return bit-identical series for equal sets.
func (d *Dataset) SeriesTotalSet(set *asindex.BitSet) (in, out []float64) {
	active := make([]*Entry, 0, len(d.Entries))
	for i := range d.Entries {
		e := &d.Entries[i]
		if !e.Transit {
			continue
		}
		if set != nil {
			id, ok := d.ix.ID(e.ASN)
			if !ok || !set.Has(id) {
				continue
			}
		}
		active = append(active, e)
	}
	return d.seriesOver(active)
}

// seriesOver synthesises the month of 5-minute series for the selected
// entries. The per-entry hash bases and averages are hoisted out of the
// interval loop and the diurnal factors come from the cached profile
// tables, so the per-sample work is one splitmix64 finish, one
// inverse-CDF, and one Exp per direction — with the same multiplication
// order as the unsplit entryRate, keeping every sample bit-identical.
func (d *Dataset) seriesOver(active []*Entry) (in, out []float64) {
	in = make([]float64, d.Cfg.Intervals)
	out = make([]float64, d.Cfg.Intervals)
	profIn, profOut := d.profiles()
	parallel.ForEachRange(d.Cfg.Workers, d.Cfg.Intervals, func(lo, hi int) {
		// The diurnal profile and jitter are per-network; summing
		// network-by-network keeps the series deterministic.
		for _, e := range active {
			baseIn := d.hashBase(e.ASN, 1)
			baseOut := d.hashBase(e.ASN, 2)
			avgIn, avgOut := e.AvgInBps, e.AvgOutBps
			for t := lo; t < hi; t++ {
				jIn := math.Exp(0.3 * normFromUniform(hashFinish(baseIn^uint64(uint32(t)))))
				jOut := math.Exp(0.3 * normFromUniform(hashFinish(baseOut^uint64(uint32(t)))))
				in[t] += avgIn * profIn[t] * jIn
				out[t] += avgOut * profOut[t] * jOut
			}
		}
	})
	return in, out
}

// P95 returns the 95th-percentile rate of a series — the billing number of
// Section 2.1.
func P95(series []float64) (float64, error) {
	return stats.P95(series)
}
