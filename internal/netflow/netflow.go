// Package netflow reproduces the traffic side of Section 4.1: a month of
// 5-minute NetFlow records collected at the border routers of the
// RedIRIS-analogue NREN, joined with BGP paths. The generator produces the
// published shape of the dataset rather than its (proprietary) bytes:
//
//   - 29,570-ish networks exchanging transit traffic with RedIRIS, with
//     rank-ordered contributions spanning ~1 Gbps down to a few bps and the
//     characteristic bend near rank 20,000 (Figure 5a);
//   - pronounced diurnal and weekly periodicity, stronger inbound than
//     outbound (Figure 5b);
//   - AS-level paths for every flow, classifying each network's association
//     as origin, destination, or transient (Figure 6), and marking which
//     flows ride the two tier-1 transit providers;
//   - content-heavy top contributors (the Microsoft/Yahoo/CDN analogues).
package netflow

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"remotepeering/internal/asindex"
	"remotepeering/internal/bgp"
	"remotepeering/internal/parallel"
	"remotepeering/internal/stats"
	"remotepeering/internal/topo"
	"remotepeering/internal/vecmath"
	"remotepeering/internal/worldgen"
)

// Config parameterises collection. Zero values take paper-scale defaults.
type Config struct {
	// Seed drives the traffic randomness (independent from the world's).
	Seed int64
	// Intervals is the number of 5-minute samples (default 8064 — the
	// paper's February 2013 month: 28 days × 288).
	Intervals int
	// IntervalLength is the metering granularity (default 5 minutes).
	IntervalLength time.Duration
	// TotalInboundBps and TotalOutboundBps set the average
	// transit-provider traffic level. Defaults: 8 Gbps in, 4.5 Gbps out
	// (inbound dominates, as in the paper).
	TotalInboundBps  float64
	TotalOutboundBps float64
	// PhaseHours rotates the diurnal/weekly profile by the given number
	// of hours (the scenario engine's diurnal-shift perturbation: a
	// traffic mix whose peak moves relative to the billing day). Zero
	// keeps the generated profile exactly as-is.
	PhaseHours float64
	// Workers bounds the parallelism of collection and series synthesis
	// (0 = one per CPU). The dataset is byte-identical for every value.
	Workers int
}

// Default average transit-provider traffic levels (the paper's regime:
// inbound dominates). Exported so the scenario engine can scale the
// defaults rather than silently replacing them.
const (
	DefaultInboundBps  = 8e9
	DefaultOutboundBps = 4.5e9
)

// DefaultIntervals is the full paper month (28 days × 288 five-minute
// samples) that a zero Config.Intervals resolves to. Exported so snapshot
// consumers can decide whether a persisted dataset satisfies an
// "intervals 0 = full month" request.
const DefaultIntervals = 8064

func (c Config) withDefaults() Config {
	if c.Intervals == 0 {
		c.Intervals = DefaultIntervals
	}
	if c.IntervalLength == 0 {
		c.IntervalLength = 5 * time.Minute
	}
	if c.TotalInboundBps == 0 {
		c.TotalInboundBps = DefaultInboundBps
	}
	if c.TotalOutboundBps == 0 {
		c.TotalOutboundBps = DefaultOutboundBps
	}
	return c
}

// Entry is one network's aggregate association with the RedIRIS border
// traffic.
type Entry struct {
	ASN topo.ASN
	// AvgInBps is the network's average contribution as an origin of
	// inbound traffic; AvgOutBps as a destination of outbound traffic.
	AvgInBps  float64
	AvgOutBps float64
	// Transit marks flows that ride one of the two tier-1 transit
	// providers (only such traffic is offloadable). Non-transit entries
	// arrive via GÉANT, an existing CDN peering, or a home-IXP peering.
	Transit bool
	// Path is the AS path from the network to RedIRIS (inbound
	// direction); outbound is assumed symmetric.
	Path []topo.ASN
}

// Dataset is the collected month of border traffic.
type Dataset struct {
	Cfg     Config
	Entries []Entry

	byASN map[topo.ASN]int
	// transient[a] accumulates the in+out average rates of flows whose
	// path crosses a as an intermediary.
	transient   map[topo.ASN]float64
	transientIn map[topo.ASN]float64
	transOut    map[topo.ASN]float64
	seed        int64

	// ix is the world's dense ASN index, shared so set-valued queries
	// (SeriesTotalSet) can take bitsets instead of maps.
	ix *asindex.Index
	// transitOnce/transitCache memoise TransitEntries: the filtered slice
	// is assembled once and shared (callers must not mutate it).
	transitOnce  sync.Once
	transitCache []Entry
	// profOnce/profIn/profOut cache the diurnal profile per interval for
	// the two amplitudes (0.55 inbound, 0.25 outbound): the profile is a
	// pure function of the interval index, so the per-sample trigonometry
	// of diurnalFactor collapses to a table lookup in the series hot loop.
	profOnce sync.Once
	profIn   []float64
	profOut  []float64
	// transitIdxOnce/transitIdxCache hoist the all-transit selection of
	// the Series* queries (entry indices, ascending) out of every call.
	transitIdxOnce  sync.Once
	transitIdxCache []int32
	// allSeriesOnce/allInCache/allOutCache hold the full-transit series —
	// synthesised at most once per dataset (the dataset is immutable, so
	// the cache is never invalidated); Series* calls hand out copies.
	// allSeriesReady flips (atomically, after the caches are filled) so
	// the snapshot layer can ask "is the month cached?" without running
	// the synthesis itself.
	allSeriesOnce  sync.Once
	allSeriesReady atomic.Bool
	allInCache     []float64
	allOutCache    []float64
	// memoMu/seriesMemo is the bounded memo of set-query series, FIFO
	// evicted; hits cost two copies instead of a month of synthesis.
	memoMu     sync.Mutex
	seriesMemo []seriesMemoEntry
}

// Collect builds the dataset from the world.
func Collect(w *worldgen.World, cfg Config) (*Dataset, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("netflow: negative Workers %d (use 0 for one per CPU)", cfg.Workers)
	}
	cfg = cfg.withDefaults()
	src := stats.NewSource(cfg.Seed).Split("netflow")

	rib, err := bgp.ComputeRIB(w.Graph, w.RedIRIS)
	if err != nil {
		return nil, fmt.Errorf("netflow: %w", err)
	}

	type cand struct {
		asn    topo.ASN
		weight float64
	}
	var cands []cand
	for _, asn := range w.Graph.ASNs() {
		if asn == w.RedIRIS {
			continue
		}
		if !rib.Reachable(asn) {
			continue
		}
		n := w.Graph.Network(asn)
		cands = append(cands, cand{asn, contributionWeight(n, src)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].weight != cands[j].weight {
			return cands[i].weight > cands[j].weight
		}
		return cands[i].asn < cands[j].asn
	})

	ix := w.Index
	if ix == nil {
		ix = asindex.New(w.Graph.ASNs())
	}
	ds := &Dataset{
		Cfg:         cfg,
		byASN:       make(map[topo.ASN]int),
		transient:   make(map[topo.ASN]float64),
		transientIn: make(map[topo.ASN]float64),
		transOut:    make(map[topo.ASN]float64),
		seed:        cfg.Seed,
		ix:          ix,
	}

	// Rank-based contribution with the Figure 5a bend near rank 20,000.
	const bend = 20000
	rawRate := func(rank int) float64 {
		r := float64(rank + 6)
		v := math.Pow(r, -1.4)
		if rank > bend {
			v *= math.Pow(float64(rank)/bend, -5)
		}
		return v
	}
	var totalRaw float64
	for i := range cands {
		totalRaw += rawRate(i + 1)
	}

	// Per-candidate entry construction — dominated by AS-path extraction
	// from the RIB — is pure per index (the RIB and graph are read-only by
	// now), so it fans out with an order-stable merge.
	ds.Entries = parallel.Map(cfg.Workers, len(cands), func(i int) Entry {
		c := cands[i]
		n := w.Graph.Network(c.asn)
		share := rawRate(i+1) / totalRaw
		inFrac := inboundFraction(n.Kind)
		path := rib.Path(c.asn)
		entry := Entry{
			ASN:       c.asn,
			AvgInBps:  share * cfg.TotalInboundBps * inFrac / 0.64,
			AvgOutBps: share * cfg.TotalOutboundBps * (1 - inFrac) / 0.36,
			Path:      path,
		}
		if len(path) >= 2 {
			gateway := path[len(path)-2]
			entry.Transit = gateway == w.Transit1 || gateway == w.Transit2
		}
		return entry
	})
	for i, e := range ds.Entries {
		ds.byASN[e.ASN] = i
	}

	// Normalise so transit totals hit the configured levels exactly.
	var sumIn, sumOut float64
	for _, e := range ds.Entries {
		if e.Transit {
			sumIn += e.AvgInBps
			sumOut += e.AvgOutBps
		}
	}
	if sumIn <= 0 || sumOut <= 0 {
		return nil, fmt.Errorf("netflow: degenerate traffic totals (in=%v out=%v)", sumIn, sumOut)
	}
	inScale := cfg.TotalInboundBps / sumIn
	outScale := cfg.TotalOutboundBps / sumOut
	for i := range ds.Entries {
		ds.Entries[i].AvgInBps *= inScale
		ds.Entries[i].AvgOutBps *= outScale
	}

	ds.buildTransient(cfg.Workers)
	return ds, nil
}

// buildTransient fills the Figure 6 transient accounting from the entry
// table: every AS strictly inside a path carries that flow as an
// intermediary. The accumulation merges per-block partial maps in fixed
// block order, so the floating-point sums are bit-identical for every
// worker count — and for a rehydrated dataset, bit-identical to the ones
// Collect computed before the snapshot was written.
func (ds *Dataset) buildTransient(workers int) {
	type transientMaps struct {
		total, in, out map[topo.ASN]float64
	}
	blocks := parallel.Blocks(len(ds.Entries), 512)
	parts := parallel.Map(workers, len(blocks), func(bi int) transientMaps {
		r := blocks[bi]
		p := transientMaps{
			total: make(map[topo.ASN]float64),
			in:    make(map[topo.ASN]float64),
			out:   make(map[topo.ASN]float64),
		}
		for _, e := range ds.Entries[r.Lo:r.Hi] {
			for _, mid := range e.Path[1:max(1, len(e.Path)-1)] {
				p.total[mid] += e.AvgInBps + e.AvgOutBps
				p.in[mid] += e.AvgInBps
				p.out[mid] += e.AvgOutBps
			}
		}
		return p
	})
	for _, p := range parts {
		for a, v := range p.total {
			ds.transient[a] += v
		}
		for a, v := range p.in {
			ds.transientIn[a] += v
		}
		for a, v := range p.out {
			ds.transOut[a] += v
		}
	}
}

// Rehydrate rebuilds a Dataset around its persisted core — the effective
// collection config and the entry table — without re-running Collect's
// candidate ranking or RIB computation. The derived tables (ASN lookup,
// transient accounting) are recomputed with the same fold order Collect
// uses, so every query over the rehydrated dataset is byte-identical to
// the same query over the original. The entry slice is adopted, not
// copied; the caller must not mutate it afterwards.
func Rehydrate(w *worldgen.World, cfg Config, entries []Entry) (*Dataset, error) {
	if w == nil {
		return nil, fmt.Errorf("netflow: nil world")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("netflow: negative Workers %d (use 0 for one per CPU)", cfg.Workers)
	}
	cfg = cfg.withDefaults()
	ix := w.Index
	if ix == nil {
		ix = asindex.New(w.Graph.ASNs())
	}
	ds := &Dataset{
		Cfg:         cfg,
		Entries:     entries,
		byASN:       make(map[topo.ASN]int, len(entries)),
		transient:   make(map[topo.ASN]float64),
		transientIn: make(map[topo.ASN]float64),
		transOut:    make(map[topo.ASN]float64),
		seed:        cfg.Seed,
		ix:          ix,
	}
	for i, e := range entries {
		if _, ok := ix.ID(e.ASN); !ok {
			return nil, fmt.Errorf("netflow: entry ASN %d not in world index", e.ASN)
		}
		ds.byASN[e.ASN] = i
	}
	ds.buildTransient(cfg.Workers)
	return ds, nil
}

// AllTransitSeriesCached returns copies of the all-transit series if this
// dataset has already synthesised them, without triggering the synthesis
// — the save-side hook of the snapshot layer (persist the month only when
// it has been paid for).
func (d *Dataset) AllTransitSeriesCached() (in, out []float64, ok bool) {
	if !d.allSeriesReady.Load() {
		return nil, nil, false
	}
	return copySeries(d.allInCache), copySeries(d.allOutCache), true
}

// PrimeAllTransitSeries installs a previously synthesised all-transit
// series into the per-dataset cache — the load-side hook of the snapshot
// layer. It is a no-op when the cache is already warm (the synthesised
// series wins; the two are bit-identical by the snapshot's round-trip
// guarantee). Series length must match the dataset's month.
func (d *Dataset) PrimeAllTransitSeries(in, out []float64) error {
	if len(in) != d.Cfg.Intervals || len(out) != d.Cfg.Intervals {
		return fmt.Errorf("netflow: series length %d/%d does not match %d intervals", len(in), len(out), d.Cfg.Intervals)
	}
	d.allSeriesOnce.Do(func() {
		d.allInCache = copySeries(in)
		d.allOutCache = copySeries(out)
		d.allSeriesReady.Store(true)
	})
	return nil
}

// AdoptAllTransitSeries is PrimeAllTransitSeries without the defensive
// copies: the zero-copy hook of the mmap attach path, where in and out
// are read-only views over a mapped snapshot. The adopted slices must
// stay valid (mapping not unmapped) and unmutated for the dataset's
// lifetime; the cache itself only ever hands out copies, so the views
// never escape. No-op when the cache is already warm.
func (d *Dataset) AdoptAllTransitSeries(in, out []float64) error {
	if len(in) != d.Cfg.Intervals || len(out) != d.Cfg.Intervals {
		return fmt.Errorf("netflow: series length %d/%d does not match %d intervals", len(in), len(out), d.Cfg.Intervals)
	}
	d.allSeriesOnce.Do(func() {
		d.allInCache = in
		d.allOutCache = out
		d.allSeriesReady.Store(true)
	})
	return nil
}

// contributionWeight ranks networks for contribution assignment: content
// and CDNs carry the most traffic toward an NREN, followed by transit
// wholesale, with leaf networks weighted by their regional affinity to
// Spain (South American networks loom large in RedIRIS traffic, which is
// what makes the Terremark-analogue a top offload IXP in Figure 7).
func contributionWeight(n *topo.Network, src *stats.Source) float64 {
	var base float64
	switch n.Kind {
	case topo.KindContent:
		base = 120 / float64(1+n.SizeRank)
	case topo.KindCDN:
		base = 90 / float64(1+n.SizeRank)
	case topo.KindTier1:
		base = 40
	case topo.KindTransit:
		base = 25 / math.Pow(float64(1+n.SizeRank), 0.8)
	case topo.KindNREN:
		// Research backbones swap bulk datasets with the NREN; the
		// GÉANT members among them do not ride transit anyway.
		base = 400 / math.Pow(float64(1+n.SizeRank), 0.6)
	default:
		base = 8 / math.Pow(float64(1+n.SizeRank), 0.25)
	}
	base *= cityAffinity(n.City)
	return base * src.LogNormal(0, 0.5)
}

// cityAffinity weights a network's traffic affinity with the Spanish NREN.
func cityAffinity(city string) float64 {
	switch city {
	case "Madrid", "Barcelona":
		return 3
	case "Sao Paolo", "Rio", "Porto Alegre", "Curitiba", "Buenos Aires",
		"Bogota", "Lima", "Santiago", "Caracas", "Mexico City",
		"Montevideo", "Asuncion", "Brasilia", "Recife", "Fortaleza",
		"Salvador", "Belo Horizonte", "Cordoba", "Mendoza":
		return 2.2
	case "Lisbon", "Paris", "London", "Amsterdam", "Frankfurt", "Milan",
		"Marseille", "Lyon":
		return 1.3
	default:
		return 1
	}
}

// inboundFraction is the share of a network's combined contribution that is
// inbound (content flows down toward the NREN's campuses).
func inboundFraction(k topo.NetworkKind) float64 {
	switch k {
	case topo.KindContent, topo.KindCDN:
		return 0.85
	case topo.KindNREN:
		return 0.66
	case topo.KindHosting:
		return 0.7
	case topo.KindTransit, topo.KindTier1:
		return 0.6
	default:
		return 0.55
	}
}

// Entry returns the record for asn, if present.
func (d *Dataset) Entry(asn topo.ASN) (Entry, bool) {
	i, ok := d.byASN[asn]
	if !ok {
		return Entry{}, false
	}
	return d.Entries[i], true
}

// TransitEntries returns only the entries riding the transit providers —
// the paper's 29,570-network dataset. The filtered slice is built once and
// cached (it is consulted inside benchmark and analysis loops); callers
// must treat it as read-only.
func (d *Dataset) TransitEntries() []Entry {
	d.transitOnce.Do(func() {
		out := make([]Entry, 0, len(d.Entries))
		for _, e := range d.Entries {
			if e.Transit {
				out = append(out, e)
			}
		}
		d.transitCache = out
	})
	return d.transitCache
}

// TransitTotals returns the average transit-provider traffic in each
// direction. The sum runs in entry order (the same order TransitEntries
// preserves), so the totals are bit-identical to the seed implementation.
func (d *Dataset) TransitTotals() (inBps, outBps float64) {
	for i := range d.TransitEntries() {
		e := &d.transitCache[i]
		inBps += e.AvgInBps
		outBps += e.AvgOutBps
	}
	return inBps, outBps
}

// Transient returns the combined in+out average rate crossing asn as an
// intermediary, plus the directional splits (Figure 6's "transient
// traffic").
func (d *Dataset) Transient(asn topo.ASN) (total, in, out float64) {
	return d.transient[asn], d.transientIn[asn], d.transOut[asn]
}

// hash01 derives a deterministic uniform [0,1) value from the dataset
// seed, an ASN, an interval index, and a direction tag, giving O(1) random
// access into the synthetic time series without storing it. It is split
// into hashBase (interval-independent, hoistable out of interval loops)
// and vecmath.Hash01 (the splitmix64 finaliser); the XOR composition keeps
// the input word — and therefore every sample — bit-identical to the
// unsplit form.
func (d *Dataset) hash01(asn topo.ASN, interval int, dir uint64) float64 {
	return vecmath.Hash01(d.hashBase(asn, dir), interval)
}

// hashBase is the per-(entry, direction) constant of hash01.
func (d *Dataset) hashBase(asn topo.ASN, dir uint64) uint64 {
	return uint64(d.seed)*0x9E3779B97F4A7C15 ^ uint64(asn)<<32 ^ dir<<61
}

// diurnalFactor is the multiplicative time-of-day/day-of-week profile. The
// epoch is midnight Monday, rotated by phase. amplitude scales the swing;
// inbound traffic uses a larger amplitude than outbound, giving
// Figure 5b's pronounced inbound periodicity.
func diurnalFactor(interval int, intervalLen time.Duration, amplitude float64, phase time.Duration) float64 {
	at := time.Duration(interval)*intervalLen + phase
	if at < 0 {
		const week = 7 * 24 * time.Hour
		at = at%week + week
	}
	const day = 24 * time.Hour
	const week = 7 * day
	hour := float64(at%day) / float64(time.Hour)
	dow := int(at%week) / int(day)
	// Busy early evening, quiet pre-dawn.
	level := math.Cos(2 * math.Pi * (hour - 19) / 24)
	weekend := 1.0
	if dow >= 5 {
		weekend = 0.7
	}
	return weekend * (1 + amplitude*level)
}

// Rate returns the network's metered traffic in the given 5-minute
// interval (bps), inbound and outbound. Deterministic in (seed, asn,
// interval).
func (d *Dataset) Rate(asn topo.ASN, interval int) (inBps, outBps float64) {
	i, ok := d.byASN[asn]
	if !ok {
		return 0, 0
	}
	return d.entryRate(&d.Entries[i], interval)
}

// profiles returns the cached per-interval diurnal factors for the two
// amplitudes (inbound 0.55, outbound 0.25). Both tables are built once,
// lazily, by evaluating diurnalFactor itself — so a table lookup is
// bit-identical to the inline call it replaces.
func (d *Dataset) profiles() (profIn, profOut []float64) {
	d.profOnce.Do(func() {
		phase := d.phase()
		d.profIn = make([]float64, d.Cfg.Intervals)
		d.profOut = make([]float64, d.Cfg.Intervals)
		for t := range d.profIn {
			d.profIn[t] = diurnalFactor(t, d.Cfg.IntervalLength, 0.55, phase)
			d.profOut[t] = diurnalFactor(t, d.Cfg.IntervalLength, 0.25, phase)
		}
	})
	return d.profIn, d.profOut
}

// phase is the dataset's diurnal-profile rotation.
func (d *Dataset) phase() time.Duration {
	return time.Duration(d.Cfg.PhaseHours * float64(time.Hour))
}

// entryRate is Rate without the index lookup, for callers already holding
// the entry.
func (d *Dataset) entryRate(e *Entry, interval int) (inBps, outBps float64) {
	profIn, profOut := d.profiles()
	din, dout := d.diurnalAt(profIn, interval, 0.55), d.diurnalAt(profOut, interval, 0.25)
	// Multiplicative lognormal jitter, direction-specific.
	jIn := vecmath.Jitter(d.hashBase(e.ASN, 1), interval)
	jOut := vecmath.Jitter(d.hashBase(e.ASN, 2), interval)
	inBps = e.AvgInBps * din * jIn
	outBps = e.AvgOutBps * dout * jOut
	return inBps, outBps
}

// diurnalAt reads the cached profile when the interval is inside the
// dataset's month and falls back to the direct evaluation for callers
// probing beyond it. The phase is derived only on the fallback path, so
// the hot path stays a bare table lookup.
func (d *Dataset) diurnalAt(prof []float64, interval int, amplitude float64) float64 {
	if interval >= 0 && interval < len(prof) {
		return prof[interval]
	}
	return diurnalFactor(interval, d.Cfg.IntervalLength, amplitude, d.phase())
}

// SeriesTotal sums the per-interval rate over a set of networks, returning
// inbound and outbound time series (Figure 5b's curves). A nil set means
// all transit entries.
//
// This is the heaviest synthesis in the pipeline (entries × intervals rate
// evaluations for a month of 5-minute samples). Results are cached per
// dataset — the all-transit series once under a sync.Once, set queries in
// a small bounded memo keyed by the exact selection — so repeated queries
// (the offload relief loop, benchmark reruns) cost a copy, and every
// returned series is bit-identical to the serial entry-order fold.
func (d *Dataset) SeriesTotal(set map[topo.ASN]bool) (in, out []float64) {
	if set == nil {
		return d.seriesAll()
	}
	active := make([]int32, 0, len(d.Entries))
	for i := range d.Entries {
		e := &d.Entries[i]
		if e.Transit && set[e.ASN] {
			active = append(active, int32(i))
		}
	}
	return d.seriesFor(active)
}

// SeriesTotalSet is SeriesTotal with the selection given as a dense bitset
// over the world's AS index — the allocation-light path the offload
// analyses use. A nil set means all transit entries. Because the entry
// iteration order is the same as SeriesTotal's (entry order, not set
// order), the two overloads return bit-identical series for equal sets
// and share the same per-dataset cache.
func (d *Dataset) SeriesTotalSet(set *asindex.BitSet) (in, out []float64) {
	if set == nil {
		return d.seriesAll()
	}
	active := make([]int32, 0, len(d.Entries))
	for i := range d.Entries {
		e := &d.Entries[i]
		if !e.Transit {
			continue
		}
		id, ok := d.ix.ID(e.ASN)
		if !ok || !set.Has(id) {
			continue
		}
		active = append(active, int32(i))
	}
	return d.seriesFor(active)
}

// transitIdx returns the memoised entry-index list of the all-transit
// selection — the hot nil-set case of the Series* queries, hoisted so it
// is assembled once per dataset instead of on every call.
func (d *Dataset) transitIdx() []int32 {
	d.transitIdxOnce.Do(func() {
		idx := make([]int32, 0, len(d.Entries))
		for i := range d.Entries {
			if d.Entries[i].Transit {
				idx = append(idx, int32(i))
			}
		}
		d.transitIdxCache = idx
	})
	return d.transitIdxCache
}

// seriesAll serves the all-transit series from the once-per-dataset cache.
func (d *Dataset) seriesAll() (in, out []float64) {
	d.allSeriesOnce.Do(func() {
		d.allInCache, d.allOutCache = d.seriesOver(d.transitIdx())
		d.allSeriesReady.Store(true)
	})
	return copySeries(d.allInCache), copySeries(d.allOutCache)
}

// seriesMemoMax bounds the per-dataset memo of set-query series. Each
// slot holds two month-long series plus the selection key; eight slots
// cover the repeated-query patterns of the offload analyses (the same
// covered set probed for relief, residual, and plotting) in ~2 MB.
const seriesMemoMax = 8

// seriesMemoEntry is one cached set query: the exact selection (entry
// indices, ascending) and its synthesized series.
type seriesMemoEntry struct {
	idx     []int32
	in, out []float64
}

// seriesFor returns the series over the given entry indices (ascending),
// consulting the caches first. A selection covering every transit entry is
// the nil-set query under a different name — both are sorted ascending, so
// equal length means equal sets — and shares its cache slot.
func (d *Dataset) seriesFor(active []int32) (in, out []float64) {
	if len(active) == len(d.transitIdx()) {
		return d.seriesAll()
	}
	if in, out, ok := d.memoLookup(active); ok {
		return in, out
	}

	in, out = d.seriesOver(active)

	d.memoMu.Lock()
	// Re-check under the lock: a concurrent equal query may have raced
	// this synthesis to the insert; storing a duplicate would waste a
	// slot and evict a distinct selection.
	exists := false
	for _, m := range d.seriesMemo {
		if slicesEqualInt32(m.idx, active) {
			exists = true
			break
		}
	}
	if !exists {
		if len(d.seriesMemo) >= seriesMemoMax {
			// FIFO eviction: shift down and clear the vacated tail so the
			// evicted month-long series are not pinned by the backing
			// array.
			copy(d.seriesMemo, d.seriesMemo[1:])
			d.seriesMemo[len(d.seriesMemo)-1] = seriesMemoEntry{}
			d.seriesMemo = d.seriesMemo[:len(d.seriesMemo)-1]
		}
		d.seriesMemo = append(d.seriesMemo, seriesMemoEntry{
			idx: append([]int32(nil), active...),
			in:  copySeries(in),
			out: copySeries(out),
		})
	}
	d.memoMu.Unlock()
	return in, out
}

// memoLookup serves a set query from the memo, if present.
func (d *Dataset) memoLookup(active []int32) (in, out []float64, ok bool) {
	d.memoMu.Lock()
	defer d.memoMu.Unlock()
	for _, m := range d.seriesMemo {
		if slicesEqualInt32(m.idx, active) {
			return copySeries(m.in), copySeries(m.out), true
		}
	}
	return nil, nil, false
}

func copySeries(s []float64) []float64 {
	return append([]float64(nil), s...)
}

func slicesEqualInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesBlockEntries is the fixed entry-block size of the entry-major
// kernel. The block structure depends only on the selection — never on
// the worker count — so the accumulation order is invariant.
const seriesBlockEntries = 32

// seriesOver synthesises the month of 5-minute series for the selected
// entries (given as indices into d.Entries, ascending).
//
// The kernel is entry-major: jitter rows are synthesised whole per entry
// (vecmath.JitterRow — the SIMD path where the CPU allows), and folded
// into the output accumulators entry-by-entry in selection order. With
// workers, fixed blocks of entries pipeline through two phases — rows
// computed in parallel across the block's entries, then folded in
// parallel across disjoint interval ranges with entries iterated in order
// inside every range — so each interval's floating-point addition chain
// is exactly the serial fold, and the series is bit-identical for every
// worker count (and to the pre-kernel interval-sharded implementation,
// which summed the same terms in the same per-interval order).
func (d *Dataset) seriesOver(active []int32) (in, out []float64) {
	n := d.Cfg.Intervals
	in = make([]float64, n)
	out = make([]float64, n)
	if n == 0 || len(active) == 0 {
		return in, out
	}
	profIn, profOut := d.profiles()

	if parallel.Workers(d.Cfg.Workers) <= 1 || len(active) == 1 {
		// Serial fast path: the fused kernel folds each entry's jitter
		// straight into the accumulators — same fold order, no barriers,
		// no materialised jitter rows.
		for _, ei := range active {
			e := &d.Entries[ei]
			vecmath.JitterAccumRow(in, profIn, e.AvgInBps, d.hashBase(e.ASN, 1), 0)
			vecmath.JitterAccumRow(out, profOut, e.AvgOutBps, d.hashBase(e.ASN, 2), 0)
		}
		return in, out
	}

	// Row buffers for one entry block, reused across blocks.
	rows := make([][]float64, 2*seriesBlockEntries)
	for i := range rows {
		rows[i] = make([]float64, n)
	}
	for _, b := range parallel.Blocks(len(active), seriesBlockEntries) {
		cnt := b.Hi - b.Lo
		// Phase 1 — the parallel axis is entries: each worker synthesises
		// whole per-entry jitter rows into its own buffers.
		parallel.ForEach(d.Cfg.Workers, cnt, func(k int) {
			e := &d.Entries[active[b.Lo+k]]
			vecmath.JitterRow(rows[2*k], d.hashBase(e.ASN, 1), 0)
			vecmath.JitterRow(rows[2*k+1], d.hashBase(e.ASN, 2), 0)
		})
		// Phase 2 — fold the block into the accumulators over disjoint
		// interval ranges, entries in ascending order within each range:
		// the per-interval addition order never depends on the workers.
		parallel.ForEachRange(d.Cfg.Workers, n, func(lo, hi int) {
			for k := 0; k < cnt; k++ {
				e := &d.Entries[active[b.Lo+k]]
				vecmath.AccumRow(in[lo:hi], profIn[lo:hi], rows[2*k][lo:hi], e.AvgInBps)
				vecmath.AccumRow(out[lo:hi], profOut[lo:hi], rows[2*k+1][lo:hi], e.AvgOutBps)
			}
		})
	}
	return in, out
}

// P95 returns the 95th-percentile rate of a series — the billing number of
// Section 2.1.
func P95(series []float64) (float64, error) {
	return stats.P95(series)
}
