package netflow

import (
	"math"
	"sort"
	"testing"
	"time"

	"remotepeering/internal/stats"
	"remotepeering/internal/topo"
	"remotepeering/internal/vecmath"
	"remotepeering/internal/worldgen"
)

var (
	worldCache *worldgen.World
	dsCache    *Dataset
)

func testData(t *testing.T) (*worldgen.World, *Dataset) {
	t.Helper()
	if worldCache == nil {
		w, err := worldgen.Generate(worldgen.Config{Seed: 5, LeafNetworks: 8000})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := Collect(w, Config{Seed: 7, Intervals: 2016}) // one week
		if err != nil {
			t.Fatal(err)
		}
		worldCache, dsCache = w, ds
	}
	return worldCache, dsCache
}

func TestCollectDeterministic(t *testing.T) {
	w, _ := testData(t)
	a, err := Collect(w, Config{Seed: 7, Intervals: 2016})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(w, Config{Seed: 7, Intervals: 2016})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ")
	}
	for i := range a.Entries {
		if a.Entries[i].ASN != b.Entries[i].ASN ||
			a.Entries[i].AvgInBps != b.Entries[i].AvgInBps {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestTransitTotalsNormalised(t *testing.T) {
	_, ds := testData(t)
	in, out := ds.TransitTotals()
	if math.Abs(in-8e9) > 1 {
		t.Errorf("inbound total = %v, want 8e9", in)
	}
	if math.Abs(out-4.5e9) > 1 {
		t.Errorf("outbound total = %v, want 4.5e9", out)
	}
	if in <= out {
		t.Error("inbound must dominate outbound (paper)")
	}
}

func TestTransitUniverseScale(t *testing.T) {
	w, ds := testData(t)
	n := len(ds.TransitEntries())
	// With 8000 leaves the transit universe is smaller than the paper's
	// 29,570 but must cover the vast majority of the world's networks.
	if n < w.Graph.Len()*8/10 {
		t.Errorf("transit universe %d of %d networks", n, w.Graph.Len())
	}
	// NREN (GÉANT member) traffic must not ride transit.
	for _, nren := range w.NRENs {
		if e, ok := ds.Entry(nren); ok && e.Transit {
			t.Errorf("NREN %d marked transit; it reaches RedIRIS via GÉANT", nren)
		}
	}
	// Peered CDNs are not transit either.
	for _, cdn := range w.PeeredCDNs {
		if e, ok := ds.Entry(cdn); ok && e.Transit {
			t.Errorf("peered CDN %d marked transit", cdn)
		}
	}
	// Research backbones DO ride transit.
	e, ok := ds.Entry(worldgen.ASNResearch)
	if !ok || !e.Transit {
		t.Error("research backbone should ride transit")
	}
}

func TestRankDistributionShape(t *testing.T) {
	// Figure 5a: few networks near the top, a heavy tail, and a bend
	// toward faster decline deep in the tail.
	_, ds := testData(t)
	var rates []float64
	for _, e := range ds.TransitEntries() {
		rates = append(rates, e.AvgInBps)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
	if rates[0] < 1e8 || rates[0] > 2.5e9 {
		t.Errorf("top contributor = %v bps, want order 10^8-10^9", rates[0])
	}
	// Top 1% must carry a large share but not everything.
	top := int(float64(len(rates)) * 0.01)
	var topSum, total float64
	for i, r := range rates {
		if i < top {
			topSum += r
		}
		total += r
	}
	frac := topSum / total
	if frac < 0.3 || frac > 0.9 {
		t.Errorf("top-1%% share = %.2f, want heavy but not total concentration", frac)
	}
	// Monotone non-increasing by construction.
	for i := 1; i < len(rates); i++ {
		if rates[i] > rates[i-1] {
			t.Fatal("rank ordering violated")
		}
	}
}

func TestPathsPresentAndEndAtRedIRIS(t *testing.T) {
	w, ds := testData(t)
	for _, e := range ds.Entries[:500] {
		if len(e.Path) < 2 {
			t.Fatalf("entry %d has path %v", e.ASN, e.Path)
		}
		if e.Path[0] != e.ASN || e.Path[len(e.Path)-1] != w.RedIRIS {
			t.Fatalf("path endpoints wrong: %v", e.Path)
		}
		gw := e.Path[len(e.Path)-2]
		if e.Transit != (gw == w.Transit1 || gw == w.Transit2) {
			t.Fatalf("transit flag inconsistent with gateway %d", gw)
		}
	}
}

func TestRateDiurnalShape(t *testing.T) {
	_, ds := testData(t)
	e := ds.TransitEntries()[0]
	// Average over many samples at the busy hour vs the quiet hour:
	// inbound must swing visibly.
	busySum, quietSum := 0.0, 0.0
	n := 0
	for day := 0; day < 5; day++ { // weekdays
		busyIdx := day*288 + 19*12 // 19:00
		quietIdx := day*288 + 7*12 // 07:00
		bi, _ := ds.Rate(e.ASN, busyIdx)
		qi, _ := ds.Rate(e.ASN, quietIdx)
		busySum += bi
		quietSum += qi
		n++
	}
	if busySum <= quietSum {
		t.Errorf("busy-hour inbound %.0f ≤ quiet-hour %.0f; diurnal cycle missing", busySum, quietSum)
	}
}

func TestRateDeterministicRandomAccess(t *testing.T) {
	_, ds := testData(t)
	e := ds.TransitEntries()[3]
	a1, b1 := ds.Rate(e.ASN, 1234)
	a2, b2 := ds.Rate(e.ASN, 1234)
	if a1 != a2 || b1 != b2 {
		t.Error("Rate must be pure")
	}
	if _, out := ds.Rate(topo.ASN(9999999), 0); out != 0 {
		t.Error("unknown ASN must rate zero")
	}
}

func TestWeekendQuieterProperty(t *testing.T) {
	_, ds := testData(t)
	e := ds.TransitEntries()[0]
	// Compare the same hour on Wednesday vs Sunday, averaged across jitter
	// by summing many 5-min slots.
	wed, sun := 0.0, 0.0
	for h := 18; h <= 21; h++ {
		for m := 0; m < 12; m++ {
			wi, _ := ds.Rate(e.ASN, 2*288+h*12+m) // Wednesday
			si, _ := ds.Rate(e.ASN, 6*288+h*12+m) // Sunday
			wed += wi
			sun += si
		}
	}
	if sun >= wed {
		t.Errorf("Sunday evening %.0f ≥ Wednesday evening %.0f", sun, wed)
	}
}

func TestSeriesTotalAndP95(t *testing.T) {
	_, ds := testData(t)
	// Use a small subset for speed.
	set := map[topo.ASN]bool{}
	for _, e := range ds.TransitEntries()[:50] {
		set[e.ASN] = true
	}
	in, out := ds.SeriesTotal(set)
	if len(in) != ds.Cfg.Intervals || len(out) != ds.Cfg.Intervals {
		t.Fatalf("series lengths %d/%d", len(in), len(out))
	}
	p95, err := P95(in)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Sum(in) / float64(len(in))
	if p95 <= mean {
		t.Errorf("p95 %.0f should exceed the mean %.0f for a diurnal series", p95, mean)
	}
	max, _ := stats.Max(in)
	if p95 > max {
		t.Error("p95 cannot exceed the maximum")
	}
}

func TestTransientAccounting(t *testing.T) {
	w, ds := testData(t)
	// The transit providers see almost all transit traffic as transient.
	tot, tin, tout := ds.Transient(w.Transit1)
	tot2, _, _ := ds.Transient(w.Transit2)
	in, out := ds.TransitTotals()
	if tot+tot2 < (in+out)*0.95 {
		t.Errorf("tier-1 transient %.2e+%.2e should carry nearly all transit %.2e", tot, tot2, in+out)
	}
	if math.Abs(tot-(tin+tout)) > 1 {
		t.Error("directional transient split inconsistent")
	}
	// A random stub leaf should have no transient traffic.
	if tl, _, _ := ds.Transient(worldgen.ASNLeafBase + 17); tl != 0 {
		// Some leaves resell transit; pick one that does not.
		if len(w.Graph.Customers(worldgen.ASNLeafBase+17)) == 0 {
			t.Errorf("stub leaf carries transient traffic %v", tl)
		}
	}
}

func TestEntryLookup(t *testing.T) {
	_, ds := testData(t)
	e := ds.Entries[0]
	got, ok := ds.Entry(e.ASN)
	if !ok || got.ASN != e.ASN {
		t.Error("Entry lookup failed")
	}
	if _, ok := ds.Entry(topo.ASN(42424242)); ok {
		t.Error("unknown ASN should not resolve")
	}
}

func TestInboundFractionBounds(t *testing.T) {
	for k := topo.KindTransit; k <= topo.KindEnterprise; k++ {
		f := inboundFraction(k)
		if f <= 0 || f >= 1 {
			t.Errorf("inboundFraction(%v) = %v", k, f)
		}
	}
}

func TestNormFromUniform(t *testing.T) {
	// Sanity: median 0, symmetric tails, strictly increasing.
	if math.Abs(vecmath.NormFromUniform(0.5)) > 1e-9 {
		t.Errorf("median = %v", vecmath.NormFromUniform(0.5))
	}
	if math.Abs(vecmath.NormFromUniform(0.975)-1.96) > 0.01 {
		t.Errorf("q(0.975) = %v, want ≈ 1.96", vecmath.NormFromUniform(0.975))
	}
	if math.Abs(vecmath.NormFromUniform(0.025)+1.96) > 0.01 {
		t.Errorf("q(0.025) = %v, want ≈ -1.96", vecmath.NormFromUniform(0.025))
	}
	prev := math.Inf(-1)
	for u := 0.01; u < 1; u += 0.01 {
		v := vecmath.NormFromUniform(u)
		if v <= prev {
			t.Fatalf("not increasing at %v", u)
		}
		prev = v
	}
	// Extremes are clamped, not NaN.
	if math.IsNaN(vecmath.NormFromUniform(0)) || math.IsNaN(vecmath.NormFromUniform(1)) {
		t.Error("extremes must not be NaN")
	}
}

func TestDiurnalFactorBounds(t *testing.T) {
	for i := 0; i < 2016; i++ {
		f := diurnalFactor(i, 5*time.Minute, 0.55, 0)
		if f < 0.2 || f > 1.6 {
			t.Fatalf("diurnal factor %v at %d out of bounds", f, i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Intervals != 8064 || c.IntervalLength != 5*time.Minute {
		t.Errorf("defaults: %+v", c)
	}
	if c.TotalInboundBps != 8e9 || c.TotalOutboundBps != 4.5e9 {
		t.Errorf("traffic defaults: %+v", c)
	}
}
