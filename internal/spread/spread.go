// Package spread orchestrates the Section 3 measurement campaign: it
// builds the simulated IXPs, schedules and runs the four-month
// looking-glass study, derives the public registry view, and runs the
// six-filter detector. The facade's RunSpreadStudy delegates here, and the
// scenario engine re-runs the same pipeline over perturbed worlds — both
// callers share one implementation, so a baseline scenario cell reproduces
// the facade's Table 1 byte-for-byte.
package spread

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"remotepeering/internal/core"
	"remotepeering/internal/ixpsim"
	"remotepeering/internal/lg"
	"remotepeering/internal/netsim"
	"remotepeering/internal/parallel"
	"remotepeering/internal/registry"
	"remotepeering/internal/stats"
	"remotepeering/internal/worldgen"
)

// Options controls Run.
type Options struct {
	// Seed drives the measurement-side randomness (noise, scheduling);
	// it is independent of the world's seed.
	Seed int64
	// IXPs selects studied-IXP indices to measure; nil means all 22.
	IXPs []int
	// Workers bounds the number of IXP simulations run concurrently
	// (0 = one per CPU). Results are byte-identical for every value: each
	// IXP runs in its own discrete-event engine with RNG streams derived
	// from Seed and the IXP index alone.
	Workers int
	// Campaign overrides the probing regime (zero value = the paper's).
	Campaign lg.Config
	// Detector overrides the methodology parameters (zero value = the
	// paper's: 10 ms threshold, 8 replies per LG, 4-reply consistency,
	// 5 ms / 10% windows, TTLs {64, 255}).
	Detector core.Config
	// Reuse, when set, lets Run skip the discrete-event simulation of
	// IXPs whose inputs are unchanged since a prior campaign and splice
	// that campaign's raw per-IXP observation streams in instead. The
	// detector always re-runs over the merged observations (its registry
	// view is global, so a membership change anywhere can move
	// cross-IXP aggregates). See Reuse for the caller's obligations.
	Reuse *Reuse
	// Retain keeps the per-IXP observation segments alive on the Result
	// so a later Run can splice them through Reuse. It roughly doubles
	// the campaign's observation memory (the segments duplicate Raw), so
	// only reuse sources — the scenario grid's baseline cell — set it.
	Retain bool
}

// Reuse points Run at a prior Result whose per-IXP observation streams
// may be spliced into a new campaign. The caller asserts that for every
// IXP the Dirty predicate clears, the simulation inputs are identical to
// From's: same measurement seed, same campaign config, and a world whose
// IXP-scoped state (members, interface records, inter-site layout) and
// global physics (pseudowire delay shifts) are unchanged. Because each
// IXP simulates in its own engine with RNG streams keyed by (seed, IXP
// index) alone, an unchanged IXP reproduces its observation stream
// byte-for-byte — splicing is a pure cost optimisation, pinned by the
// scenario engine's reuse-equivalence tests. A Result rehydrated from a
// snapshot (Rehydrate) is a valid From under the same obligations.
type Reuse struct {
	// From is the prior campaign.
	From *Result
	// Dirty reports whether the IXP with the given studied index must be
	// re-simulated. A nil predicate marks every IXP clean.
	Dirty func(ixpIndex int) bool
}

// Result bundles the outcome of a Section 3 measurement campaign.
type Result struct {
	// Report is the detector output: Table 1 rows, Figure 2 CDF,
	// Figure 3 classification, Figure 4 network aggregation.
	Report *core.Report
	// Observations is the number of ping outcomes collected.
	Observations int
	// Validation scores the detector against the simulator's ground
	// truth — the reproduction's analogue of the paper's TorIX/E4A/
	// Invitel validation, but exhaustive.
	Validation core.Validation
	// Raw holds the collected ping outcomes, so callers can re-run the
	// detector under alternative configurations (threshold sweeps,
	// filter ablations) without repeating the campaign.
	Raw []lg.Observation
	// Truth reports the ground-truth remoteness of a probed interface.
	Truth func(ixpIndex int, ip netip.Addr) bool
	// Campaign is the effective campaign configuration.
	Campaign lg.Config
	// Detector is the detector configuration the observations were
	// analyzed under, and Seed the measurement seed the campaign ran
	// with — recorded so persistence layers can both re-run the same
	// analysis byte-identically and answer "does this stored campaign
	// satisfy that query?".
	Detector core.Config
	Seed     int64

	// perIXP retains each simulated (or spliced) IXP's raw observation
	// stream (only when Options.Retain was set) so a later Run can splice
	// clean IXPs through Options.Reuse. truth holds each IXP's ground-truth
	// table (target IP → remoteness) — the one piece of the discrete-event
	// simulation that outlives it, always retained: Validate, Reuse, and
	// snapshot persistence all read remoteness through it.
	perIXP map[int][]lg.Observation
	truth  map[int]map[netip.Addr]bool
}

// Reanalyze re-runs the detector over the campaign's raw observations with
// a different configuration — the ablation entry point.
func (r *Result) Reanalyze(w *worldgen.World, cfg core.Config) (*core.Report, error) {
	return core.Analyze(r.Raw, registry.FromWorld(w), r.Campaign.Duration, cfg)
}

// Run reproduces Section 3 over the given world.
func Run(w *worldgen.World, opts Options) (*Result, error) {
	return RunCtx(context.Background(), w, opts)
}

// RunCtx is Run with cooperative cancellation at per-IXP granularity:
// once ctx is done, no further IXP simulation starts and the call returns
// ctx.Err(). The scenario engine passes its cell context here so an
// abandoned what-if stops inside the campaign — the pipeline's longest
// stage — rather than running all studied IXPs to completion.
func RunCtx(ctx context.Context, w *worldgen.World, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if w == nil {
		return nil, fmt.Errorf("spread: nil world")
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("spread: negative Workers %d (use 0 for one per CPU)", opts.Workers)
	}
	ixps := opts.IXPs
	if len(ixps) == 0 {
		ixps = make([]int, w.NumStudied())
		for i := range ixps {
			ixps[i] = i
		}
	}
	campaignCfg := opts.Campaign
	if campaignCfg.Duration == 0 {
		campaignCfg.Duration = time.Duration(w.CampaignDuration()) * 24 * time.Hour
	}

	// The IXP simulations are mutually independent — separate fabrics,
	// nodes, and event queues — so each runs in its own engine and the
	// per-IXP observation streams merge afterwards. The RNG sources are
	// split serially up front, labelled by IXP index (the same labels the
	// serial implementation used), so every IXP sees the same streams
	// regardless of worker count or scheduling: the merged, sorted result
	// is byte-identical to a single-threaded run.
	src := stats.NewSource(opts.Seed)
	simSrcs := make([]*stats.Source, len(ixps))
	campSrcs := make([]*stats.Source, len(ixps))
	for k, idx := range ixps {
		simSrcs[k] = src.Split(fmt.Sprintf("ixp-%d", idx))
		campSrcs[k] = src.Split(fmt.Sprintf("campaign-%d", idx))
	}

	type ixpRun struct {
		truth map[netip.Addr]bool
		obs   []lg.Observation
	}
	runs, err := parallel.MapErrCtx(ctx, opts.Workers, len(ixps), func(k int) (ixpRun, error) {
		idx := ixps[k]
		if r := opts.Reuse; r != nil && r.From != nil && (r.Dirty == nil || !r.Dirty(idx)) {
			if obs, ok := r.From.perIXP[idx]; ok {
				// Unchanged IXP: splice the prior campaign's raw stream
				// (and its ground-truth table) instead of re-running the
				// discrete-event simulation.
				return ixpRun{truth: r.From.truth[idx], obs: obs}, nil
			}
		}
		var e netsim.Engine
		camp := lg.NewCampaign(campaignCfg)
		sim, err := ixpsim.Build(&e, w, idx, campaignCfg.Duration, simSrcs[k])
		if err != nil {
			return ixpRun{}, fmt.Errorf("spread: build IXP %d: %w", idx, err)
		}
		if err := camp.Schedule(&e, sim, campSrcs[k]); err != nil {
			return ixpRun{}, fmt.Errorf("spread: schedule IXP %d: %w", idx, err)
		}
		if err := e.Run(); err != nil {
			return ixpRun{}, fmt.Errorf("spread: campaign IXP %d: %w", idx, err)
		}
		// Canonicalise each stream inside its own worker: the merge below
		// concatenates segments in ascending IXP order, and because the
		// canonical sort's leading key is the IXP index, per-segment
		// stable sorts compose into exactly the sequence one global
		// stable sort would produce — cheaper (smaller sorts, in
		// parallel), and spliced streams arrive pre-sorted for free.
		obs := camp.Raw()
		lg.Sort(obs)
		return ixpRun{truth: sim.TruthMap(), obs: obs}, nil
	})
	if err != nil {
		return nil, err
	}

	truths := make(map[int]map[netip.Addr]bool, len(ixps))
	var perIXP map[int][]lg.Observation
	if opts.Retain {
		perIXP = make(map[int][]lg.Observation, len(ixps))
	}
	total := 0
	for k, r := range runs {
		truths[ixps[k]] = r.truth
		if perIXP != nil {
			perIXP[ixps[k]] = r.obs
		}
		total += len(r.obs)
	}
	order := make([]int, len(ixps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ixps[order[a]] < ixps[order[b]] })
	obs := make([]lg.Observation, 0, total)
	dup := false
	for i := 1; i < len(order); i++ {
		if ixps[order[i]] == ixps[order[i-1]] {
			dup = true
		}
	}
	for _, k := range order {
		obs = append(obs, runs[k].obs...)
	}
	if dup {
		// A duplicated IXP selection interleaves segments under the
		// canonical order; fall back to the global sort.
		lg.Sort(obs)
	}
	reg := registry.FromWorld(w)
	report, err := core.Analyze(obs, reg, campaignCfg.Duration, opts.Detector)
	if err != nil {
		return nil, fmt.Errorf("spread: detector: %w", err)
	}
	truth := truthFunc(truths)
	return &Result{
		Report:       report,
		Observations: len(obs),
		Validation:   report.Validate(truth),
		Raw:          obs,
		Truth:        truth,
		Campaign:     campaignCfg,
		Detector:     opts.Detector,
		Seed:         opts.Seed,
		perIXP:       perIXP,
		truth:        truths,
	}, nil
}

// truthFunc wraps per-IXP ground-truth tables as a Result.Truth closure.
func truthFunc(truths map[int]map[netip.Addr]bool) func(int, netip.Addr) bool {
	return func(ixpIndex int, ip netip.Addr) bool {
		return truths[ixpIndex][ip]
	}
}

// RemoteTruth extracts the campaign's ground truth in persistable form:
// for every simulated (or spliced) studied-IXP index, the sorted list of
// probe-target addresses that are remote, plus the sorted list of indices
// themselves — including IXPs with no remote targets, so rehydration
// restores exactly the same key set.
func (r *Result) RemoteTruth() (ixps []int, remote [][]netip.Addr) {
	ixps = make([]int, 0, len(r.truth))
	for idx := range r.truth {
		ixps = append(ixps, idx)
	}
	sort.Ints(ixps)
	remote = make([][]netip.Addr, len(ixps))
	for k, idx := range ixps {
		var ips []netip.Addr
		for ip, isRemote := range r.truth[idx] {
			if isRemote {
				ips = append(ips, ip)
			}
		}
		sort.Slice(ips, func(a, b int) bool { return ips[a].Less(ips[b]) })
		remote[k] = ips
	}
	return ixps, remote
}

// Rehydrate reconstructs a campaign Result from its persisted parts: the
// canonical raw observation stream, the effective campaign and detector
// configurations, and the per-IXP remote-truth sets from RemoteTruth.
// The detector re-runs over the raw stream against the world's registry
// view — both pure functions of their inputs — so the rehydrated Report,
// Validation, and Observations are byte-identical to the live Result's.
// Per-IXP segments are recovered by splitting the canonical stream on its
// leading sort key, which makes a rehydrated Result a valid splice source
// for Options.Reuse.
func Rehydrate(w *worldgen.World, seed int64, campaign lg.Config, detector core.Config, raw []lg.Observation, ixps []int, remote [][]netip.Addr) (*Result, error) {
	if w == nil {
		return nil, fmt.Errorf("spread: nil world")
	}
	if len(ixps) != len(remote) {
		return nil, fmt.Errorf("spread: truth table mismatch: %d IXPs, %d remote sets", len(ixps), len(remote))
	}
	truths := make(map[int]map[netip.Addr]bool, len(ixps))
	for k, idx := range ixps {
		m := make(map[netip.Addr]bool, len(remote[k]))
		for _, ip := range remote[k] {
			m[ip] = true
		}
		truths[idx] = m
	}
	perIXP := make(map[int][]lg.Observation, len(ixps))
	lo := 0
	for lo < len(raw) {
		hi := lo + 1
		for hi < len(raw) && raw[hi].IXPIndex == raw[lo].IXPIndex {
			hi++
		}
		if _, ok := perIXP[raw[lo].IXPIndex]; ok {
			return nil, fmt.Errorf("spread: raw stream not in canonical order (IXP %d segments split)", raw[lo].IXPIndex)
		}
		perIXP[raw[lo].IXPIndex] = raw[lo:hi:hi]
		lo = hi
	}
	report, err := core.Analyze(raw, registry.FromWorld(w), campaign.Duration, detector)
	if err != nil {
		return nil, fmt.Errorf("spread: rehydrate detector: %w", err)
	}
	truth := truthFunc(truths)
	return &Result{
		Report:       report,
		Observations: len(raw),
		Validation:   report.Validate(truth),
		Raw:          raw,
		Truth:        truth,
		Campaign:     campaign,
		Detector:     detector,
		Seed:         seed,
		perIXP:       perIXP,
		truth:        truths,
	}, nil
}
