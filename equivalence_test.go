package remotepeering

// The bitset-equivalence suite pins the refactored Section 4 hot paths to
// the behaviour of the seed (map-based) implementation. The goldens under
// testdata/ were recorded from the pre-refactor code at reduced scale for
// seeds {1,2,3}; every optimisation since must reproduce them bit-for-bit
// (floats compare with ==, not a tolerance) at workers 1, 2, and 8.
//
// Regenerate with:
//
//	go test -run TestBitsetEquivalenceGoldens -update-goldens
//
// but only when the *intended* numerical behaviour changes — the whole
// point of the file is that perf refactors are not allowed to.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"remotepeering/internal/offload"
	"remotepeering/internal/topo"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/equiv_seed_*.json from the current implementation")

// equivGolden is one seed's recorded behaviour of the four hot-path
// entry points the bitset engine replaces.
type equivGolden struct {
	Seed           int64                   `json:"seed"`
	PotentialPeers int                     `json:"potential_peers"`
	Greedy         []GreedyStep            `json:"greedy"`
	GreedyIfaces   []offload.InterfaceStep `json:"greedy_interfaces"`
	SingleIXP      []offload.IXPPotential  `json:"single_ixp"`
	Residual       float64                 `json:"residual"`
	Covered        []uint32                `json:"covered"`
	SeriesIn       []float64               `json:"series_in"`
	SeriesOut      []float64               `json:"series_out"`
}

// equivIXPs is the reach set used for the Covered/SeriesTotal checks: two
// big exchanges, one mid-size, one from the non-studied tail.
var equivIXPs = []int{0, 5, 12, 40}

func computeEquiv(seed int64, workers int, t *testing.T) equivGolden {
	t.Helper()
	w, err := GenerateWorld(WorldConfig{Seed: seed, LeafNetworks: 4000, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := CollectTraffic(w, TrafficConfig{Seed: seed + 100, Intervals: 288, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewOffloadStudyOptions(w, ds, OffloadOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	covered := s.Covered(equivIXPs, GroupAll)
	asns := make([]uint32, 0, len(covered))
	for a := range covered {
		asns = append(asns, uint32(a))
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	in, out := ds.SeriesTotal(covered)
	return equivGolden{
		Seed:           seed,
		PotentialPeers: s.PotentialPeerCount(),
		Greedy:         s.Greedy(GroupAll, 0),
		GreedyIfaces:   s.GreedyInterfaces(GroupOpenSelective, 20),
		SingleIXP:      s.SingleIXP(GroupOpen),
		Residual:       s.Residual(0, 5, GroupAll),
		Covered:        asns,
		SeriesIn:       in,
		SeriesOut:      out,
	}
}

func goldenPath(seed int64) string {
	return filepath.Join("testdata", fmt.Sprintf("equiv_seed_%d.json", seed))
}

func TestBitsetEquivalenceGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence goldens are not short-mode material")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			if *updateGoldens {
				g := computeEquiv(seed, 1, t)
				buf, err := json.MarshalIndent(g, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(seed), append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("recorded %s", goldenPath(seed))
				return
			}
			raw, err := os.ReadFile(goldenPath(seed))
			if err != nil {
				t.Fatalf("missing golden (run with -update-goldens once): %v", err)
			}
			var want equivGolden
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				got := computeEquiv(seed, workers, t)
				if got.PotentialPeers != want.PotentialPeers {
					t.Errorf("workers=%d: potential peers = %d, golden %d", workers, got.PotentialPeers, want.PotentialPeers)
				}
				if !reflect.DeepEqual(got.Greedy, want.Greedy) {
					t.Errorf("workers=%d: Greedy steps differ from seed-implementation golden", workers)
				}
				if !reflect.DeepEqual(got.GreedyIfaces, want.GreedyIfaces) {
					t.Errorf("workers=%d: GreedyInterfaces steps differ from golden", workers)
				}
				if !reflect.DeepEqual(got.SingleIXP, want.SingleIXP) {
					t.Errorf("workers=%d: SingleIXP potentials differ from golden", workers)
				}
				if got.Residual != want.Residual {
					t.Errorf("workers=%d: Residual = %v, golden %v", workers, got.Residual, want.Residual)
				}
				if !reflect.DeepEqual(got.Covered, want.Covered) {
					t.Errorf("workers=%d: Covered set differs from golden (%d vs %d networks)", workers, len(got.Covered), len(want.Covered))
				}
				if !reflect.DeepEqual(got.SeriesIn, want.SeriesIn) || !reflect.DeepEqual(got.SeriesOut, want.SeriesOut) {
					t.Errorf("workers=%d: SeriesTotal series differ from golden", workers)
				}
			}
		})
	}
}

// silence the unused-import linters if the aliases move: the golden schema
// deliberately names the internal types so a facade rename cannot silently
// change what is being compared.
var _ = topo.ASN(0)
