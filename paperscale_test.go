package remotepeering

import (
	"testing"
)

// TestPaperScaleRegression pins the headline reproduction numbers recorded
// in EXPERIMENTS.md at the default seeds. It runs the full paper-scale
// pipeline (~6 s), so it is skipped under -short.
func TestPaperScaleRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale regression skipped in -short mode")
	}
	w, err := GenerateWorld(WorldConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Section 3.
	spread, err := RunSpreadStudy(w, SpreadOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	analyzed := len(spread.Report.Analyzed())
	if analyzed < 4400 || analyzed > 4500 {
		t.Errorf("analyzed interfaces = %d, want ≈ 4,451 (paper)", analyzed)
	}
	withRemote, total := spread.Report.IXPsWithRemotePeering()
	if withRemote != 20 || total != 22 {
		t.Errorf("IXPs with remote peering = %d/%d, want 20/22", withRemote, total)
	}
	if got := spread.Report.IXPsWithIntercontinental(); got != 12 {
		t.Errorf("intercontinental IXPs = %d, want 12", got)
	}
	for f, want := range map[Filter][2]int{
		FilterSampleSize:    {18, 24},
		FilterTTLSwitch:     {82, 82},
		FilterTTLMatch:      {20, 20},
		FilterRTTConsistent: {80, 115},
		FilterLGConsistent:  {28, 28},
		FilterASNChange:     {5, 5},
	} {
		got := spread.Report.Discards[f]
		if got < want[0] || got > want[1] {
			t.Errorf("%v discards = %d, want %d..%d", f, got, want[0], want[1])
		}
	}
	if p := spread.Validation.Precision(); p < 0.99 {
		t.Errorf("precision = %v; the conservative methodology must not flag direct peers", p)
	}
	if r := spread.Validation.Recall(); r < 0.98 {
		t.Errorf("recall = %v", r)
	}
	nets := spread.Report.Networks()
	if len(nets) < 1800 || len(nets) > 2400 {
		t.Errorf("identified networks = %d, want ≈ 1,904-2,100", len(nets))
	}

	// Section 4.
	ds, err := CollectTraffic(w, TrafficConfig{Seed: 2, Intervals: 288})
	if err != nil {
		t.Fatal(err)
	}
	study, err := NewOffloadStudy(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	in, out := ds.TransitTotals()
	all := make([]int, len(w.IXPs))
	for i := range all {
		all[i] = i
	}
	g4In, g4Out := study.Potential(all, GroupAll)
	frac4 := (g4In + g4Out) / (in + out)
	if frac4 < 0.25 || frac4 > 0.42 {
		t.Errorf("group-4 offload fraction = %.3f, want ≈ 0.30 (paper: 0.27 in / 0.33 out)", frac4)
	}
	g1In, g1Out := study.Potential(all, GroupOpen)
	frac1 := (g1In + g1Out) / (in + out)
	if frac1 < 0.05 || frac1 > 0.2 {
		t.Errorf("group-1 offload fraction = %.3f, want ≈ 0.08-0.15", frac1)
	}

	steps := study.Greedy(GroupAll, 0)
	ach := steps[len(steps)-1].OffloadedInBps + steps[len(steps)-1].OffloadedOutBps
	at5 := steps[4].OffloadedInBps + steps[4].OffloadedOutBps
	if at5/ach < 0.6 {
		t.Errorf("first 5 IXPs realise %.0f%% of the potential, want most of it", 100*at5/ach)
	}

	// Section 5.
	fit, err := FitDecayFromGreedy(steps[:30], in+out)
	if err != nil {
		t.Fatal(err)
	}
	if fit.B <= 0 || fit.R2 < 0.9 {
		t.Errorf("decay fit b=%.3f R2=%.3f; the exponential model should fit", fit.B, fit.R2)
	}
	params := DefaultEconParams(fit.B)
	if !params.RemoteViable() {
		t.Error("at the fitted b, remote peering should be viable under the reference prices")
	}
}
