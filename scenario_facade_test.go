package remotepeering

// Facade-level tests for the scenario engine surface and the Workers
// validation satellite: every facade option that carries a Workers knob
// must reject negative values with a clear error instead of silently
// resolving them to one-per-CPU.

import (
	"strings"
	"testing"
)

func TestNegativeWorkersRejected(t *testing.T) {
	requireNegErr := func(what string, err error) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), "negative Workers") {
			t.Errorf("%s with negative Workers: got %v, want a 'negative Workers' error", what, err)
		}
	}

	_, err := GenerateWorld(WorldConfig{Seed: 1, LeafNetworks: 1000, Workers: -1})
	requireNegErr("GenerateWorld", err)

	w := detWorld(t)
	_, err = RunSpreadStudy(w, SpreadOptions{Seed: 1, Workers: -3})
	requireNegErr("RunSpreadStudy", err)

	_, err = CollectTraffic(w, TrafficConfig{Seed: 1, Intervals: 12, Workers: -1})
	requireNegErr("CollectTraffic", err)

	ds, err := CollectTraffic(w, TrafficConfig{Seed: 1, Intervals: 12})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewOffloadStudyOptions(w, ds, OffloadOptions{Workers: -1})
	requireNegErr("NewOffloadStudyOptions", err)

	grid := ScenarioGrid{Scenarios: []Scenario{{Name: "x", Ops: []ScenarioOp{TrafficScale{Factor: 2}}}}}
	_, err = RunScenarios(w, grid, ScenarioOptions{Workers: -1})
	requireNegErr("RunScenarios", err)
}

func TestParseScenarioGridFacade(t *testing.T) {
	grid, err := ParseScenarioGrid("dark=outage:AMS-IX;surge=churn:LINX:40:10,traffic:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(grid.Scenarios))
	}
	op, err := ParseScenarioOp("latency:city:-3")
	if err != nil {
		t.Fatal(err)
	}
	if ls, ok := op.(LatencyShift); !ok || ls.Band != BandIntercity || ls.DeltaMs != -3 {
		t.Fatalf("unexpected op %#v", op)
	}
}

func TestCloneWorldIndependent(t *testing.T) {
	w := detWorld(t)
	c := CloneWorld(w)
	before := len(w.IXPs[0].Members)
	c.IXPs[0].Members = nil
	if len(w.IXPs[0].Members) != before {
		t.Fatal("clone aliases the parent's memberships")
	}
	if c.Index != w.Index {
		t.Fatal("clone should share the immutable AS index")
	}
}
