package remotepeering

// The reuse-equivalence suite pins the two cost layers this repo's perf
// work leans on — the per-dataset series caches and the scenario grid's
// stage-invalidation reuse — to the behaviour of the uncached/full-rerun
// paths, bit for bit. The caches may only ever change *when* work runs,
// never what it computes; these tests are the enforcement.

import (
	"fmt"
	"reflect"
	"testing"

	"remotepeering/internal/scenario"
	"remotepeering/internal/vecmath"
)

// seriesEquivFixture builds a reduced-scale world+dataset+study triple.
func seriesEquivFixture(t *testing.T, workers int) (*World, *TrafficDataset, *OffloadStudy) {
	t.Helper()
	w := detWorld(t)
	ds, err := CollectTraffic(w, TrafficConfig{Seed: 53, Intervals: 288, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewOffloadStudyOptions(w, ds, OffloadOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return w, ds, s
}

// TestSeriesCachedPathsEquivalent checks, at workers 1/2/8, that every
// cached way of asking for a series — the memoised repeat query, the
// map-set overload, the all-transit sync.Once cache — returns exactly
// the series a fresh, cache-cold dataset synthesises.
func TestSeriesCachedPathsEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("series equivalence sweeps a month at three worker counts")
	}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, ds, study := seriesEquivFixture(t, workers)
			ixps := []int{0, 3, 12, 40}
			covered := study.CoveredSet(ixps, GroupOpenSelective)

			// Cold set query, then the memo-served repeat.
			in1, out1 := ds.SeriesTotalSet(covered)
			in2, out2 := ds.SeriesTotalSet(covered)
			if !reflect.DeepEqual(in1, in2) || !reflect.DeepEqual(out1, out2) {
				t.Fatal("memo-served series differs from its own cold synthesis")
			}
			// The map overload must share the same bits.
			inMap, outMap := ds.SeriesTotal(study.Covered(ixps, GroupOpenSelective))
			if !reflect.DeepEqual(in1, inMap) || !reflect.DeepEqual(out1, outMap) {
				t.Fatal("SeriesTotal(map) differs from SeriesTotalSet(bitset)")
			}
			// A fresh dataset (cold caches) must agree with everything.
			_, dsFresh, _ := seriesEquivFixture(t, workers)
			inF, outF := dsFresh.SeriesTotalSet(study.CoveredSet(ixps, GroupOpenSelective))
			if !reflect.DeepEqual(in1, inF) || !reflect.DeepEqual(out1, outF) {
				t.Fatal("cached-dataset series differs from a cache-cold dataset")
			}

			// All-transit path: once-cache vs repeat vs fresh.
			allIn1, allOut1 := ds.SeriesTotal(nil)
			allIn2, allOut2 := ds.SeriesTotalSet(nil)
			if !reflect.DeepEqual(allIn1, allIn2) || !reflect.DeepEqual(allOut1, allOut2) {
				t.Fatal("all-transit cache differs between overloads")
			}
			allInF, allOutF := dsFresh.SeriesTotal(nil)
			if !reflect.DeepEqual(allIn1, allInF) || !reflect.DeepEqual(allOut1, allOutF) {
				t.Fatal("all-transit cached series differs from cold synthesis")
			}

			// Returned slices are copies: mutating one must not leak into
			// the cache.
			in2[0] += 1e9
			in3, _ := ds.SeriesTotalSet(covered)
			if in3[0] != in1[0] {
				t.Fatal("series cache leaked a caller's mutation")
			}
		})
	}
}

// TestSeriesKernelScalarSIMDIdentical pins the SIMD row kernel against
// the pure-Go scalar kernel over a whole dataset synthesis. On machines
// without the kernels both paths are the scalar loop and the test is a
// tautology — which is exactly the claim.
func TestSeriesKernelScalarSIMDIdentical(t *testing.T) {
	_, ds, study := seriesEquivFixture(t, 2)
	covered := study.CoveredSet([]int{0, 5, 12}, GroupAll)

	was := vecmath.SIMDEnabled()
	defer vecmath.SetSIMD(was)

	vecmath.SetSIMD(true)
	_, dsSIMD, _ := seriesEquivFixture(t, 2)
	inS, outS := dsSIMD.SeriesTotalSet(covered)

	vecmath.SetSIMD(false)
	_, dsScalar, _ := seriesEquivFixture(t, 2)
	inP, outP := dsScalar.SeriesTotalSet(covered)

	if !reflect.DeepEqual(inS, inP) || !reflect.DeepEqual(outS, outP) {
		t.Fatal("SIMD and scalar series kernels disagree")
	}
	_ = ds
}

// reuseOpts keeps the reuse-equivalence grids affordable.
func reuseOpts(workers int, noReuse bool) ScenarioOptions {
	o := scenarioTestOptions(workers)
	o.NoReuse = noReuse
	return o
}

// TestScenarioReuseEquivalence runs the shared 7-cell what-if matrix with
// stage reuse on and off at workers 1/2/8: the reports must be
// deep-equal. Together with TestRunScenariosIdenticalAcrossWorkers this
// pins the reuse machinery from both axes.
func TestScenarioReuseEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("reuse equivalence re-runs the grid six times")
	}
	w := detWorld(t)
	grid := scenarioTestGrid(t)
	for _, workers := range []int{1, 2, 8} {
		reused, err := RunScenarios(w, grid, reuseOpts(workers, false))
		if err != nil {
			t.Fatal(err)
		}
		full, err := RunScenarios(w, grid, reuseOpts(workers, true))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reused, full) {
			t.Errorf("workers=%d: stage-reusing report differs from full rerun", workers)
		}
	}
}

// TestOpStageMaskConsistency is the property test over the op algebra:
// for every op kind, a single-op grid evaluated with stage reuse must be
// byte-identical to the full rerun. An op whose declared mask wrongly
// leaves a stage clean would reuse a stale artifact here and diverge —
// so this is the test that makes each op's mask part of its contract.
func TestOpStageMaskConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("mask property test re-runs one grid per op kind")
	}
	w := detWorld(t)
	ops := []string{
		"outage:MSK-IX",
		"latency:all:2",
		"latency:city:-3",
		"churn:AMS-IX:6:3",
		"traffic:1.3",
		"diurnal:5",
		"portprice:0.6",
		"remoteprice:1.4",
	}
	for _, spec := range ops {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			op, err := ParseScenarioOp(spec)
			if err != nil {
				t.Fatal(err)
			}
			// The closed mask must at least be non-empty — an op with no
			// dirty stages could not perturb anything.
			if scenario.OpStages(op) == 0 {
				t.Fatalf("op %q declares an empty dirty-stage mask", spec)
			}
			grid := ScenarioGrid{Scenarios: []Scenario{{Name: "probe", Ops: []ScenarioOp{op}}}}
			reused, err := RunScenarios(w, grid, reuseOpts(0, false))
			if err != nil {
				t.Fatal(err)
			}
			full, err := RunScenarios(w, grid, reuseOpts(0, true))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reused, full) {
				t.Errorf("op %q: stage-reusing cell differs from full rerun (mask %v is too permissive)",
					spec, scenario.OpStages(op))
			}
		})
	}
}
