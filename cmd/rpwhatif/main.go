// Command rpwhatif runs deterministic what-if scenarios over the synthetic
// world: it expands a scenario×seed grid, re-runs the full reproduction
// pipeline (spread study, traffic collection, offload analysis, economic
// model) in every cell on a perturbed clone of the world, and prints each
// cell's headline numbers diffed against the unperturbed baseline.
//
// Usage:
//
//	rpwhatif [-seed N] [-leaves N] [-workers N] \
//	         [-scenarios "name=op,op;name=op"] [-seeds 0,1] \
//	         [-k N] [-greedy N] [-days N] [-intervals N] [-csv] [-json] \
//	         [-load world.rpsnap] [-save world.rpsnap]
//
// -json emits the same stable rendering rpserve's /v1/whatif embeds, so a
// batch run and a server response diff cleanly. -load evaluates the grid
// over a snapshot world instead of regenerating.
//
// Ops: outage:<IXP>, latency:<all|city|country|continent>:<deltaMs>,
// churn:<IXP>:<join>:<leave>, traffic:<factor>, diurnal:<hours>,
// portprice:<factor>, remoteprice:<factor>.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"remotepeering"
	"remotepeering/internal/cli"
)

var fatal = cli.Fataler("rpwhatif")

// defaultGrid is the showcase campaign run when -scenarios is not given:
// the paper's biggest offload IXP goes dark, a provider latency upgrade
// pulls intercity remotes under the detector threshold, a membership
// surge at LINX, a traffic surge, and a remote-price drop.
const defaultGrid = "ams-outage=outage:AMS-IX;" +
	"fast-pseudowires=latency:city:-3;" +
	"linx-surge=churn:LINX:40:10;" +
	"traffic-surge=traffic:1.5;" +
	"cheap-remote=remoteprice:0.5"

func main() {
	common := cli.CommonFlags()
	measureSeed := flag.Int64("measure-seed", 2, "measurement-side seed")
	trafficSeed := flag.Int64("traffic-seed", 3, "traffic generation seed")
	scenarios := flag.String("scenarios", defaultGrid, "grid spec: ';'-separated \"name=op,op\" scenarios")
	seeds := flag.String("seeds", "0", "comma-separated seed offsets (each scenario runs once per offset)")
	k := flag.Int("k", 5, "IXPs for the offload-coverage metric")
	greedy := flag.Int("greedy", 30, "greedy expansion depth for the decay fit")
	days := flag.Int("days", 0, "campaign length in days (0 = world default)")
	intervals := flag.Int("intervals", 0, "5-minute traffic intervals per cell (0 = full month)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of the text table")
	jsonOut := flag.Bool("json", false, "emit the stable JSON rendering (shared with rpserve /v1/whatif)")
	snapFlags := cli.SnapshotFlags()
	flag.Parse()
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	grid, err := remotepeering.ParseScenarioGrid(*scenarios)
	if err != nil {
		fatal(err)
	}
	if grid.Seeds, err = cli.Int64List(*seeds); err != nil {
		fatal(err)
	}

	start := time.Now()
	w, snap, err := snapFlags.ResolveWorld(common)
	if err != nil {
		fatal(err)
	}
	opts := remotepeering.ScenarioOptions{
		MeasureSeed:  *measureSeed,
		TrafficSeed:  *trafficSeed,
		Workers:      *common.Workers,
		CoverageIXPs: *k,
		GreedyIXPs:   *greedy,
		Intervals:    *intervals,
	}
	if *days > 0 {
		opts.Campaign.Duration = time.Duration(*days) * 24 * time.Hour
	}
	if snap != nil && snap.Cones != nil {
		opts.Cones = snap.Cones
	}
	report, err := remotepeering.RunScenarios(w, grid, opts)
	if err != nil {
		fatal(err)
	}
	if err := snapFlags.SaveSnapshot(cli.MergeSnapshot(snap, w)); err != nil {
		fatal(err)
	}

	switch {
	case *csvOut:
		if err := report.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	case *jsonOut:
		if err := report.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fmt.Print(report.Text())
		fmt.Printf("\n%d cells in %.1fs\n", len(report.Cells), time.Since(start).Seconds())
	}
}
