// Command rpserve is the long-lived query side of the reproduction: it
// loads a snapshot (built with rpworld/rpoffload/rpspread -save) once and
// serves the /v1 JSON API — world summary, spread study, offload
// analysis, and concurrent what-if scenario grids with request
// deduplication and an LRU result cache — until SIGTERM/SIGINT, then
// shuts down gracefully.
//
// Usage:
//
//	rpworld -seed 1 -save world.rpsnap            # v1 (canonical)
//	rpworld -seed 1 -save-flat world.flat         # v2 (mmap attach)
//	rpserve -snapshot world.rpsnap -listen :8080 &
//	curl 'localhost:8080/v1/world'
//	curl 'localhost:8080/v1/whatif?scenarios=ams-outage%3Doutage%3AAMS-IX'
//
// Endpoints:
//
//	GET  /v1/world         snapshot summary (digest, sizes, layers)
//	GET  /v1/spread        Section 3 campaign summary  [seed, days]
//	GET  /v1/offload       Section 4 analysis          [group, k, greedy, traffic-seed, intervals]
//	GET  /v1/whatif        scenario grid (also POST with a JSON body)
//	                       [scenarios, seeds, measure-seed, traffic-seed, k, greedy, intervals, days]
//	GET  /v1/report/{id}   a previously computed response by content id
//
// Identical queries against the same snapshot are answered from the
// result cache in microseconds; identical *concurrent* queries coalesce
// onto one computation. Abandoned requests cancel their evaluation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"remotepeering"
	"remotepeering/internal/cli"
	"remotepeering/internal/serve"
)

var fatal = cli.Fataler("rpserve")

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	snapPath := flag.String("snapshot", "", "snapshot file to serve (required; build with rpworld -save)")
	maxInflight := flag.Int("max-inflight", 4, "maximum concurrently evaluating requests (others queue)")
	cacheMB := flag.Int("cache-mb", 64, "result-cache budget in MiB (negative disables)")
	workers := flag.Int("workers", 0, "worker bound per evaluation (0 = one per CPU; results identical for any value)")
	flag.Parse()
	if *snapPath == "" {
		fatal(fmt.Errorf("missing -snapshot (build one with: rpworld -save world.rpsnap)"))
	}

	start := time.Now()
	flat, err := remotepeering.SnapshotIsFlat(*snapPath)
	if err != nil {
		fatal(err)
	}
	var snap *remotepeering.Snapshot
	if flat {
		// Attach the flat format: microseconds to map and validate the
		// directory, then one lazy materialization. The mapping stays live
		// for the whole process — the snapshot's hot arrays alias it.
		a, err := remotepeering.AttachSnapshot(*snapPath)
		if err != nil {
			fatal(err)
		}
		attached := time.Since(start)
		if snap, err = a.Snapshot(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rpserve: attached flat snapshot in %s, materialized in %s\n",
			attached.Round(time.Microsecond), (time.Since(start) - attached).Round(time.Millisecond))
	} else if snap, err = remotepeering.LoadSnapshot(*snapPath); err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Snapshot:    snap,
		MaxInflight: *maxInflight,
		CacheMB:     *cacheMB,
		Workers:     *workers,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rpserve: loaded %s in %.2fs (digest %s, %d networks, dataset=%v spread=%v)\n",
		*snapPath, time.Since(start).Seconds(), snap.Digest[:12],
		snap.World.Graph.Len(), snap.Dataset != nil, snap.Spread != nil)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := serve.NewHTTPServer(*listen, srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rpserve: listening on %s\n", *listen)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rpserve: shutting down (draining in-flight requests)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "rpserve: bye")
	}
}
