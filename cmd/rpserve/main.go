// Command rpserve is the long-lived query side of the reproduction: it
// serves the /v1 JSON API — world summary, spread study, offload
// analysis, and concurrent what-if scenario grids with request
// deduplication and an LRU result cache — until SIGTERM/SIGINT, then
// shuts down gracefully. It serves either one snapshot (-snapshot, built
// with rpworld/rpoffload/rpspread -save) or a whole directory of them
// (-snapshot-dir): a catalog where worlds attach on demand, stay
// resident under -resident-mb, and are selected per request with
// world=<digest prefix>.
//
// Usage:
//
//	rpworld -seed 1 -save world.rpsnap            # v1 (canonical)
//	rpworld -seed 1 -save-flat world.flat         # v2 (mmap attach)
//	rpserve -snapshot world.rpsnap -listen :8080 &
//	rpserve -snapshot-dir worlds/ -resident-mb 256 -listen :8080 &
//	curl 'localhost:8080/v1/worlds'
//	curl 'localhost:8080/v1/whatif?scenarios=ams-outage%3Doutage%3AAMS-IX'
//
// Endpoints:
//
//	GET  /v1/world         world summary (digest, sizes, layers)  [world]
//	GET  /v1/worlds        catalog overview: every world's health + residency counters
//	GET  /v1/healthz       liveness probe (always 200 while serving)
//	GET  /v1/readyz        readiness probe (503 once no world is servable)
//	GET  /v1/spread        Section 3 campaign summary  [world, seed, days]
//	GET  /v1/offload       Section 4 analysis          [world, group, k, greedy, traffic-seed, intervals]
//	GET  /v1/whatif        scenario grid (also POST with a JSON body)
//	                       [world, scenarios, seeds, measure-seed, traffic-seed, k, greedy, intervals, days]
//	GET  /v1/report/{id}   a previously computed response by content id
//	GET  /v1/tick          a world's clock: live?, tick, view digest    [world]
//	POST /v1/tick          advance the living world n ticks             [world, n]
//	GET  /v1/since         events + metric movement since tick t        [world, t]
//	GET  /v1/newspaper     digest of the recent window of ticks         [world, window]
//
// POST /v1/tick brings any served world to life: a tick engine attaches
// to it (regime set by -tick) and evolves it through membership churn,
// traffic drift, price walks, and occasional outages. Each committed tick
// publishes a new immutable view whose digest is "<base>@<tick>" — the
// content address queries key on — so ticking never tears a concurrent
// read and cached bytes stay correct forever.
//
// Identical queries against the same snapshot are answered from the
// result cache in microseconds — without attaching the world, if it has
// gone cold; identical *concurrent* queries coalesce onto one
// computation. Abandoned requests cancel their evaluation, a per-query
// deadline (-query-timeout) bounds each computation, and once -max-pending
// computations are queued or running, new cold queries are shed with
// 429 + Retry-After while cache hits keep serving. A snapshot failing its
// CRC validation is quarantined, not retried; the rest of the catalog
// keeps serving. -chaos injects a seeded fault schedule (attach delays
// and failures, evaluation panics, cache drops) for robustness drills:
// completed responses stay byte-identical to a fault-free server's.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"remotepeering"
	"remotepeering/internal/cli"
	"remotepeering/internal/fleet"
	"remotepeering/internal/obs"
	"remotepeering/internal/serve"
)

var fatal = cli.Fataler("rpserve")

// newLogger builds the process logger: text to stderr at the -log-level
// threshold.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// startAdmin serves the -admin-listen plane (metrics, flight recorder,
// pprof) on its own listener, so profiling a loaded server never
// competes with the serving mux. Returns nil when the plane is off.
func startAdmin(addr string, reg *obs.Registry, rec *obs.FlightRecorder) *http.Server {
	if addr == "" {
		return nil
	}
	hs := &http.Server{Addr: addr, Handler: obs.AdminHandler(reg, rec), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			slog.Error("admin listener failed", "addr", addr, "err", err)
		}
	}()
	slog.Info("admin plane listening", "addr", addr)
	return hs
}

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	snapPath := flag.String("snapshot", "", "snapshot file to serve (build with rpworld -save)")
	snapDir := flag.String("snapshot-dir", "", "directory of snapshots to serve as a catalog (mutually exclusive with -snapshot)")
	residentMB := flag.Int("resident-mb", 0, "catalog resident-world budget in MiB (0 = unlimited); worlds evict LRU under it")
	maxInflight := flag.Int("max-inflight", 4, "maximum concurrently evaluating requests (others queue)")
	maxPending := flag.Int("max-pending", 0, "pending-computation cap before cold queries shed with 429 (0 = 4×max-inflight, negative disables)")
	cacheMB := flag.Int("cache-mb", 64, "result-cache budget in MiB (negative disables)")
	workers := flag.Int("workers", 0, "worker bound per evaluation (0 = one per CPU; results identical for any value)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-computation deadline (0 = none); expired computations answer 504")
	chaos := flag.String("chaos", "", "inject a seeded fault schedule, e.g. seed=42,slow=0.3,fail=0.1,panic=0.05,cachefail=0.2,delay=20ms")
	tickSpec := flag.String("tick", "", "living-world evolution regime for POST /v1/tick, e.g. seed=7,joins=3,leaves=2,outage=0.02 (empty = defaults)")
	fsync := flag.String("fsync", "", "living-world journal sync policy: commit (every acked tick durable, the default), checkpoint, or off; overrides the -tick spec's fsync key")
	role := flag.String("role", "single", "single (standalone server), worker (fleet member), or router (fleet front door; needs -peers, serves no snapshots itself)")
	peers := flag.String("peers", "", "comma-separated worker base URLs for -role=router, e.g. http://127.0.0.1:9081,http://127.0.0.1:9082")
	fleetListen := flag.String("fleet-listen", "", "router listen address for -role=router (default: -listen)")
	liveDir := flag.String("live-dir", "", "journal living worlds under this directory (synced per -fsync); restart resumes their timelines")
	heartbeat := flag.Duration("heartbeat", 0, "router heartbeat interval (0 = 500ms)")
	adminListen := flag.String("admin-listen", "", "admin plane listen address serving /metrics, /debug/requests, and /debug/pprof (empty = disabled; the serving listener also exposes /metrics and /debug/requests)")
	logLevel := flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	switch *role {
	case "router":
		runRouter(*fleetListen, *listen, *peers, *chaos, *adminListen, *heartbeat)
		return
	case "single", "worker":
		// A worker is a plain rpserve that a router fronts; the role flag
		// only documents intent (and gates nothing today).
	default:
		fatal(fmt.Errorf("bad -role %q (want single, worker, or router)", *role))
	}
	switch {
	case *snapPath == "" && *snapDir == "":
		fatal(fmt.Errorf("missing -snapshot or -snapshot-dir (build one with: rpworld -save world.rpsnap)"))
	case *snapPath != "" && *snapDir != "":
		fatal(fmt.Errorf("-snapshot and -snapshot-dir are mutually exclusive"))
	}

	var plane *remotepeering.FaultPlane
	if *chaos != "" {
		var err error
		if plane, err = remotepeering.ParseFaultPlane(*chaos); err != nil {
			fatal(err)
		}
		slog.Info("chaos plane armed", "spec", *chaos)
	}

	reg := obs.NewRegistry()
	rec := obs.NewFlightRecorder(0)
	rec.SetLogger(logger)
	cfg := serve.Config{
		MaxInflight:  *maxInflight,
		MaxPending:   *maxPending,
		CacheMB:      *cacheMB,
		Workers:      *workers,
		QueryTimeout: *queryTimeout,
		Faults:       plane,
		LiveDir:      *liveDir,
		Metrics:      reg,
		Recorder:     rec,
	}
	if *tickSpec != "" {
		tcfg, err := remotepeering.ParseTickConfig(*tickSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Tick = &tcfg
	}
	if *fsync != "" {
		policy, err := remotepeering.ParseJournalSyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		if cfg.Tick == nil {
			tcfg := remotepeering.DefaultTickConfig()
			cfg.Tick = &tcfg
		}
		cfg.Tick.Fsync = policy
	}

	start := time.Now()
	if *snapDir != "" {
		cat, err := remotepeering.OpenCatalog(*snapDir, remotepeering.CatalogOptions{
			ResidentBytes: int64(*residentMB) << 20,
			Faults:        plane,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Catalog = cat
		slog.Info("catalog opened", "worlds", cat.Len(), "dir", *snapDir,
			"elapsed", time.Since(start).Round(time.Millisecond), "resident_mb", *residentMB)
	} else {
		flat, err := remotepeering.SnapshotIsFlat(*snapPath)
		if err != nil {
			fatal(err)
		}
		var snap *remotepeering.Snapshot
		if flat {
			// Attach the flat format: microseconds to map and validate the
			// directory, then one lazy materialization. The mapping stays live
			// for the whole process — the snapshot's hot arrays alias it.
			a, err := remotepeering.AttachSnapshot(*snapPath)
			if err != nil {
				fatal(err)
			}
			attached := time.Since(start)
			if snap, err = a.Snapshot(); err != nil {
				fatal(err)
			}
			slog.Info("attached flat snapshot", "attach", attached.Round(time.Microsecond),
				"materialize", (time.Since(start) - attached).Round(time.Millisecond))
		} else if snap, err = remotepeering.LoadSnapshot(*snapPath); err != nil {
			fatal(err)
		}
		cfg.Snapshot = snap
		slog.Info("snapshot loaded", "path", *snapPath,
			"elapsed", time.Since(start).Round(time.Millisecond), "digest", snap.Digest[:12],
			"networks", snap.World.Graph.Len(), "dataset", snap.Dataset != nil, "spread", snap.Spread != nil)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	admin := startAdmin(*adminListen, reg, rec)
	hs := serve.NewHTTPServer(*listen, srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	slog.Info("listening", "addr", *listen, "role", *role)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		slog.Info("shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if admin != nil {
			admin.Shutdown(shutdownCtx)
		}
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		slog.Info("bye")
	}
}

// runRouter is -role=router: no snapshots, no catalog — just the fleet
// front door. The chaos plane here injects the *network* classes
// (conndrop, netdelay, partition, slownode) into requests the router
// sends its workers, which is where link-level chaos belongs.
func runRouter(fleetListen, listen, peers, chaos, adminListen string, heartbeat time.Duration) {
	if fleetListen == "" {
		fleetListen = listen
	}
	if strings.TrimSpace(peers) == "" {
		fatal(fmt.Errorf("-role=router needs -peers (comma-separated worker URLs)"))
	}
	var plane *remotepeering.FaultPlane
	if chaos != "" {
		var err error
		if plane, err = remotepeering.ParseFaultPlane(chaos); err != nil {
			fatal(err)
		}
		slog.Info("router chaos plane armed", "spec", chaos)
	}
	reg := obs.NewRegistry()
	rec := obs.NewFlightRecorder(0)
	rec.SetLogger(slog.Default())
	plane.Instrument(reg)
	router, err := fleet.New(fleet.Config{
		Peers:          strings.Split(peers, ","),
		HeartbeatEvery: heartbeat,
		Faults:         plane,
		Logger:         slog.Default(),
		Metrics:        reg,
		Recorder:       rec,
	})
	if err != nil {
		fatal(err)
	}
	router.Start()
	defer router.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	admin := startAdmin(adminListen, reg, rec)
	hs := serve.NewHTTPServer(fleetListen, router.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	slog.Info("routing", "peers", len(strings.Split(peers, ",")), "addr", fleetListen)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		slog.Info("router shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if admin != nil {
			admin.Shutdown(shutdownCtx)
		}
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		slog.Info("bye")
	}
}
