// Command rpecon reproduces Section 5 of the paper: it fits the decay
// parameter b from the Section 4 greedy-offload curve (equation 3),
// evaluates the optimal numbers of directly (ñ, eq. 11) and remotely (m̃,
// eq. 13) reached IXPs, and sweeps the economic-viability condition
// (eq. 14) across decay rates and price ratios.
//
// Usage:
//
//	rpecon [-seed N] [-traffic-seed N] [-leaves N] [-p/-g/-u/-h/-v prices]
package main

import (
	"flag"
	"fmt"
	"math"

	"remotepeering"
	"remotepeering/internal/cli"
)

var fatal = cli.Fataler("rpecon")

func main() {
	common := cli.CommonFlags()
	snapFlags := cli.SnapshotFlags()
	trafficSeed := flag.Int64("traffic-seed", 2, "traffic generation seed")
	pP := flag.Float64("p", 1.0, "normalised transit price p")
	pG := flag.Float64("g", 0.08, "direct peering per-IXP cost g")
	pU := flag.Float64("u", 0.15, "direct peering per-unit cost u")
	pH := flag.Float64("h", 0.02, "remote peering per-IXP cost h")
	pV := flag.Float64("v", 0.45, "remote peering per-unit cost v")
	flag.Parse()
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	w, snap, err := snapFlags.ResolveWorld(common)
	if err != nil {
		fatal(err)
	}
	var ds *remotepeering.TrafficDataset
	if cli.DatasetMatches(snap, *trafficSeed, 288) {
		ds = snap.Dataset
	} else {
		ds, err = remotepeering.CollectTraffic(w, remotepeering.TrafficConfig{Seed: *trafficSeed, Intervals: 288, Workers: *common.Workers})
		if err != nil {
			fatal(err)
		}
	}
	cones := remotepeering.NewConeCache()
	if snap != nil && snap.Cones != nil {
		cones = snap.Cones
	}
	study, err := remotepeering.NewOffloadStudyOptions(w, ds, remotepeering.OffloadOptions{Workers: *common.Workers, Cones: cones})
	if err != nil {
		fatal(err)
	}
	defer func() {
		out := cli.MergeSnapshot(snap, w)
		out.Dataset = ds
		out.Cones = cones
		if err := snapFlags.SaveSnapshot(out); err != nil {
			fatal(err)
		}
	}()

	fmt.Println("# Section 5 — economic viability of remote peering")
	fmt.Println()
	fmt.Println("## Fitting b (eq. 3) from the greedy offload curves of Figure 9")
	in, out := ds.TransitTotals()
	total := in + out
	fmt.Printf("%-46s %8s %6s\n", "peer group", "b", "R2")
	var bAll float64
	for _, g := range remotepeering.PeerGroups {
		steps := study.Greedy(g, 30)
		// Fit the *offloadable* decay; FitDecayFromGreedy subtracts the
		// non-offloadable floor so the diminishing-marginal-utility
		// component is what the model generalises.
		fit, err := remotepeering.FitDecayFromGreedy(steps, total)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-46s %8.3f %6.3f\n", g.String(), fit.B, fit.R2)
		if g == remotepeering.GroupAll {
			bAll = fit.B
		}
	}
	fmt.Println()

	params := remotepeering.EconParams{P: *pP, G: *pG, U: *pU, H: *pH, V: *pV, B: bAll}
	if err := params.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("## Model at fitted b = %.3f with p=%.2f g=%.2f u=%.2f h=%.2f v=%.2f\n",
		bAll, *pP, *pG, *pU, *pH, *pV)
	n := math.Max(0, params.OptimalDirectN())
	m := math.Max(0, params.OptimalRemoteM())
	fmt.Printf("  optimal direct IXPs  ñ = %.2f  (direct offload d̃ = %.2f)   [eq. 11]\n", n, params.DirectOffload())
	fmt.Printf("  optimal remote IXPs  m̃ = %.2f                               [eq. 13]\n", m)
	fmt.Printf("  viability ratio g(p−v)/(h(p−u)) = %.2f vs e^b = %.2f ⇒ viable: %v   [eq. 14]\n",
		params.ViabilityRatio(), math.Exp(params.B), params.RemoteViable())
	fmt.Printf("  viability threshold b* = %.3f\n", params.ViabilityThresholdB())
	br := params.Breakdown(n, m)
	fmt.Printf("  cost breakdown at (ñ, m̃): transit %.3f + direct %.3f+%.3f + remote %.3f+%.3f = %.3f (all-transit: %.3f)\n",
		br.Transit, br.DirectFixed, br.DirectTraffic, br.RemoteFixed, br.RemoteTraffic, br.Total(), params.P)
	fmt.Println()

	fmt.Println("## Viability sweep across decay rates b (eq. 14)")
	fmt.Printf("%8s %10s %8s %8s %8s\n", "b", "viable", "ñ", "m̃", "cost")
	for _, b := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 3.0} {
		p := params
		p.B = b
		n := math.Max(0, p.OptimalDirectN())
		m := math.Max(0, p.OptimalRemoteM())
		fmt.Printf("%8.2f %10v %8.2f %8.2f %8.3f\n", b, p.RemoteViable(), n, m, p.TotalCost(n, m))
	}
	fmt.Println()

	fmt.Println("## Viability sweep across g/h (the African-region effect, Section 5.2)")
	fmt.Printf("%8s %12s %10s\n", "g/h", "ratio", "b*")
	for _, gh := range []float64{1.5, 2, 4, 8, 16, 32} {
		p := params
		p.H = p.G / gh
		fmt.Printf("%8.1f %12.2f %10.3f\n", gh, p.ViabilityRatio(), p.ViabilityThresholdB())
	}
}
