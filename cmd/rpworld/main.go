// Command rpworld generates and inspects the synthetic world: the AS-level
// economy, the 65 IXPs with their memberships and ground-truth remote
// peers, the hazard assignments at the studied IXPs, and the registry view.
// With -ticks it also evolves the world forward through the tick engine —
// membership churn, traffic drift, price walks, occasional outages — and
// with -journal the timeline is durable: an append-only event journal plus
// periodic checkpoints, from which a killed run resumes to byte-identical
// state.
//
// Usage:
//
//	rpworld [-seed N] [-leaves N] [-ixp ACRONYM] [-save world.rpsnap] [-load world.rpsnap]
//	rpworld -seed 1 -ticks 50 -journal evo/ -tick 'joins=3,leaves=2,outage=0.02'
//
// -save persists the generated (or evolved) world as a snapshot for
// rpserve and the other tools' -load flags; -load inspects an existing
// snapshot instead of regenerating. -ticks names an absolute target tick,
// so re-running with the same -journal continues the same timeline: a run
// to 30 then a run to 50 lands on exactly the bytes of one run to 50.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"remotepeering"
	"remotepeering/internal/cli"
)

var fatal = cli.Fataler("rpworld")

func main() {
	common := cli.CommonFlags()
	snapFlags := cli.SnapshotFlags()
	ixp := flag.String("ixp", "", "show membership detail for one IXP acronym")
	ticks := flag.Int("ticks", 0, "evolve the world to this absolute tick (0 = don't tick; with -journal, a lower-or-equal target just recovers)")
	journalDir := flag.String("journal", "", "evolution directory holding the append-only journal and checkpoints; an existing journal resumes its timeline")
	tickSpec := flag.String("tick", "", "evolution regime spec, e.g. seed=7,joins=3,leaves=2,traffic=0.02,outage=0.01,checkpoint=16 (empty = defaults; a resumed journal's recorded regime wins)")
	fsync := flag.String("fsync", "", "journal sync policy: commit (every acked tick durable, the default), checkpoint, or off; overrides the spec's fsync key")
	logLevel := flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
	flag.Parse()
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", *logLevel))
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})))
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	w, _, err := snapFlags.ResolveWorld(common)
	if err != nil {
		fatal(err)
	}

	snap := &remotepeering.Snapshot{World: w}
	if *ticks > 0 || *journalDir != "" {
		if snap, err = evolve(w, *ticks, *journalDir, *tickSpec, *fsync, *common.Workers); err != nil {
			fatal(err)
		}
		w = snap.World
	}
	if err := snapFlags.SaveSnapshot(snap); err != nil {
		fatal(err)
	}

	if *ixp != "" {
		x, xi, err := w.IXPByAcronym(*ixp)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s — %s (%s, %s), subnet %s, peak %.2f Tbps\n",
			x.Acronym, x.FullName, x.City(), x.Country, x.Subnet, x.PeakTrafficTbps)
		fmt.Printf("membership slots: %d, distinct members: %d, remote: %d\n",
			len(x.Members), len(x.MemberASNs()), x.RemoteMemberCount())
		fmt.Printf("LGs: PCH=%v RIPE=%v, inter-site delay: %v\n",
			x.HasPCHLG, x.HasRIPELG, w.InterSiteDelay(xi))
		for _, m := range x.Members {
			if !m.Remote {
				continue
			}
			n := w.Graph.Network(m.ASN)
			fmt.Printf("  remote: AS%-6d %-26s from %-14s via %s (%s)\n",
				m.ASN, n.Name, m.AccessCity, m.Provider, m.IP)
		}
		return
	}

	fmt.Printf("networks: %d  (tier-1s: %d, NRENs: %d)\n", w.Graph.Len(), len(w.Tier1s), len(w.NRENs))
	fmt.Printf("RedIRIS: AS%d (transit from AS%d, AS%d; GÉANT AS%d)\n",
		w.RedIRIS, w.Transit1, w.Transit2, w.Geant)
	fmt.Printf("IXPs: %d total, %d studied; probe-target interfaces: %d\n\n",
		len(w.IXPs), w.NumStudied(), len(w.Ifaces))

	fmt.Printf("%-12s %-14s %8s %8s %7s %5s %5s\n",
		"IXP", "city", "members", "distinct", "remote", "PCH", "RIPE")
	for i, x := range w.IXPs {
		studied := ""
		if i < w.NumStudied() {
			studied = "*"
		}
		fmt.Printf("%-12s %-14s %8d %8d %7d %5v %5v %s\n",
			x.Acronym, x.City(), len(x.Members), len(x.MemberASNs()),
			x.RemoteMemberCount(), x.HasPCHLG, x.HasRIPELG, studied)
	}

	fmt.Println("\nhazards at studied IXPs:")
	counts := map[string]int{}
	for _, r := range w.Ifaces {
		counts[r.Hazard.String()]++
	}
	for _, k := range []string{"none", "blackhole", "flaky", "ttl-switch", "odd-ttl", "misdirect", "congested", "far-site", "asn-churn"} {
		fmt.Printf("  %-12s %d\n", k, counts[k])
	}
}

// evolve runs the living world: build or recover the tick engine, advance
// to the absolute target, narrate each committed tick, print the window's
// newspaper, and hand back the evolved snapshot payload (world + Tick
// section) for -save/-save-flat.
func evolve(w *remotepeering.World, target int, dir, spec, fsync string, workers int) (*remotepeering.Snapshot, error) {
	cfg, err := remotepeering.ParseTickConfig(spec)
	if err != nil {
		return nil, err
	}
	cfg.Pipeline.Workers = workers
	if fsync != "" {
		if cfg.Fsync, err = remotepeering.ParseJournalSyncPolicy(fsync); err != nil {
			return nil, err
		}
	}

	ctx := context.Background()
	var eng *remotepeering.TickEngine
	if dir != "" {
		eng, err = remotepeering.OpenTickEngine(ctx, dir, w, cfg)
	} else {
		eng, err = remotepeering.NewTickEngine(ctx, w, cfg)
	}
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	from := eng.Tick()
	if from > 0 {
		slog.Info("recovered journal", "dir", dir, "tick", from)
	}
	results, err := eng.AdvanceTo(ctx, uint64(target))
	for _, r := range results {
		ev := strings.Join(r.Events, " ")
		if ev == "" {
			ev = "(quiet)"
		}
		fmt.Printf("tick %4d  [%-26s] remote=%3d offload=%5.1f%% viable=%-5v %s\n",
			r.Tick, r.Stages, r.Metrics.DetectedRemote, r.Metrics.OffloadedFrac*100,
			r.Metrics.Viable, ev)
	}
	if err != nil {
		// Partial progress is already durable when journalled; report how
		// far the timeline got before failing.
		return nil, fmt.Errorf("advance stopped at tick %d: %w", eng.Tick(), err)
	}
	fmt.Println()
	fmt.Print(eng.Newspaper(int(eng.Tick() - from)).String())

	if err := eng.Close(); err != nil {
		return nil, err
	}
	return &remotepeering.Snapshot{World: eng.World(), Tick: eng.State()}, nil
}
