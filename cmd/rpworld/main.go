// Command rpworld generates and inspects the synthetic world: the AS-level
// economy, the 65 IXPs with their memberships and ground-truth remote
// peers, the hazard assignments at the studied IXPs, and the registry view.
//
// Usage:
//
//	rpworld [-seed N] [-leaves N] [-ixp ACRONYM] [-save world.rpsnap] [-load world.rpsnap]
//
// -save persists the generated world as a snapshot for rpserve and the
// other tools' -load flags; -load inspects an existing snapshot instead
// of regenerating.
package main

import (
	"flag"
	"fmt"

	"remotepeering"
	"remotepeering/internal/cli"
)

var fatal = cli.Fataler("rpworld")

func main() {
	common := cli.CommonFlags()
	snapFlags := cli.SnapshotFlags()
	ixp := flag.String("ixp", "", "show membership detail for one IXP acronym")
	flag.Parse()
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	w, _, err := snapFlags.ResolveWorld(common)
	if err != nil {
		fatal(err)
	}
	if err := snapFlags.SaveSnapshot(&remotepeering.Snapshot{World: w}); err != nil {
		fatal(err)
	}

	if *ixp != "" {
		x, xi, err := w.IXPByAcronym(*ixp)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s — %s (%s, %s), subnet %s, peak %.2f Tbps\n",
			x.Acronym, x.FullName, x.City(), x.Country, x.Subnet, x.PeakTrafficTbps)
		fmt.Printf("membership slots: %d, distinct members: %d, remote: %d\n",
			len(x.Members), len(x.MemberASNs()), x.RemoteMemberCount())
		fmt.Printf("LGs: PCH=%v RIPE=%v, inter-site delay: %v\n",
			x.HasPCHLG, x.HasRIPELG, w.InterSiteDelay(xi))
		for _, m := range x.Members {
			if !m.Remote {
				continue
			}
			n := w.Graph.Network(m.ASN)
			fmt.Printf("  remote: AS%-6d %-26s from %-14s via %s (%s)\n",
				m.ASN, n.Name, m.AccessCity, m.Provider, m.IP)
		}
		return
	}

	fmt.Printf("networks: %d  (tier-1s: %d, NRENs: %d)\n", w.Graph.Len(), len(w.Tier1s), len(w.NRENs))
	fmt.Printf("RedIRIS: AS%d (transit from AS%d, AS%d; GÉANT AS%d)\n",
		w.RedIRIS, w.Transit1, w.Transit2, w.Geant)
	fmt.Printf("IXPs: %d total, %d studied; probe-target interfaces: %d\n\n",
		len(w.IXPs), w.NumStudied(), len(w.Ifaces))

	fmt.Printf("%-12s %-14s %8s %8s %7s %5s %5s\n",
		"IXP", "city", "members", "distinct", "remote", "PCH", "RIPE")
	for i, x := range w.IXPs {
		studied := ""
		if i < w.NumStudied() {
			studied = "*"
		}
		fmt.Printf("%-12s %-14s %8d %8d %7d %5v %5v %s\n",
			x.Acronym, x.City(), len(x.Members), len(x.MemberASNs()),
			x.RemoteMemberCount(), x.HasPCHLG, x.HasRIPELG, studied)
	}

	fmt.Println("\nhazards at studied IXPs:")
	counts := map[string]int{}
	for _, r := range w.Ifaces {
		counts[r.Hazard.String()]++
	}
	for _, k := range []string{"none", "blackhole", "flaky", "ttl-switch", "odd-ttl", "misdirect", "congested", "far-site", "asn-churn"} {
		fmt.Printf("  %-12s %d\n", k, counts[k])
	}
}
