// Command rpoffload reproduces Section 4 of the paper: the traffic offload
// potential of the RedIRIS-analogue NREN. It prints Figures 5a, 5b, 6, 7,
// 8, 9 and 10.
//
// Usage:
//
//	rpoffload [-seed N] [-traffic-seed N] [-leaves N] [-only fig5a,...]
package main

import (
	"flag"
	"fmt"
	"time"

	"remotepeering"
	"remotepeering/internal/cli"
)

var fatal = cli.Fataler("rpoffload")

func main() {
	common := cli.CommonFlags()
	snapFlags := cli.SnapshotFlags()
	trafficSeed := flag.Int64("traffic-seed", 2, "traffic generation seed")
	intervals := flag.Int("intervals", 0, "5-minute intervals (0 = full month)")
	only := flag.String("only", "", "comma-separated subset: fig5a,fig5b,fig6,fig7,fig8,fig9,fig10")
	flag.Parse()
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()
	show := cli.Selector(*only)

	start := time.Now()
	w, snap, err := snapFlags.ResolveWorld(common)
	if err != nil {
		fatal(err)
	}
	var ds *remotepeering.TrafficDataset
	if cli.DatasetMatches(snap, *trafficSeed, *intervals) {
		// The snapshot carries this exact dataset (and possibly its
		// synthesised series cache): skip the month of collection.
		ds = snap.Dataset
	} else {
		ds, err = remotepeering.CollectTraffic(w, remotepeering.TrafficConfig{Seed: *trafficSeed, Intervals: *intervals, Workers: *common.Workers})
		if err != nil {
			fatal(err)
		}
	}
	cones := remotepeering.NewConeCache()
	if snap != nil && snap.Cones != nil {
		cones = snap.Cones
	}
	study, err := remotepeering.NewOffloadStudyOptions(w, ds, remotepeering.OffloadOptions{Workers: *common.Workers, Cones: cones})
	if err != nil {
		fatal(err)
	}
	defer func() {
		out := cli.MergeSnapshot(snap, w)
		out.Dataset = ds
		out.Cones = cones
		if err := snapFlags.SaveSnapshot(out); err != nil {
			fatal(err)
		}
	}()
	in, out := ds.TransitTotals()
	fmt.Printf("# offload study: %d transit networks, %.2f Gbps in / %.2f Gbps out, %d potential peers (%.1fs)\n\n",
		len(ds.TransitEntries()), in/1e9, out/1e9, study.PotentialPeerCount(), time.Since(start).Seconds())

	allIXPs := make([]int, len(w.IXPs))
	for i := range allIXPs {
		allIXPs[i] = i
	}

	if show("fig5a") {
		fmt.Println("## Figure 5a — rank-ordered contributions to transit traffic (bps)")
		entries := ds.TransitEntries()
		covered := study.Covered(allIXPs, remotepeering.GroupAll)
		fmt.Printf("%8s %14s %15s %9s\n", "rank", "inbound", "outbound", "offload?")
		for _, r := range []int{1, 2, 5, 10, 30, 100, 300, 1000, 3000, 10000, 20000, len(entries) - 1} {
			if r >= len(entries) {
				continue
			}
			e := entries[r-1]
			mark := ""
			if covered[e.ASN] {
				mark = "yes"
			}
			fmt.Printf("%8d %14.1f %15.1f %9s\n", r, e.AvgInBps, e.AvgOutBps, mark)
		}
		fmt.Println()
	}

	if show("fig5b") {
		fmt.Println("## Figure 5b — transit traffic and offload potential over time (Gbps)")
		// Print a daily profile: one sample per 2 hours over the first week.
		covered := study.Covered(allIXPs, remotepeering.GroupAll)
		fmt.Printf("%10s %10s %12s %11s %13s\n", "interval", "transitIn", "offloadIn", "transitOut", "offloadOut")
		for day := 0; day < 7; day++ {
			for h := 0; h < 24; h += 6 {
				iv := day*288 + h*12
				if iv >= ds.Cfg.Intervals {
					break
				}
				var tIn, tOut, oIn, oOut float64
				for _, e := range ds.TransitEntries() {
					i2, o2 := ds.Rate(e.ASN, iv)
					tIn += i2
					tOut += o2
					if covered[e.ASN] {
						oIn += i2
						oOut += o2
					}
				}
				fmt.Printf("%10d %10.2f %12.2f %11.2f %13.2f\n", iv, tIn/1e9, oIn/1e9, tOut/1e9, oOut/1e9)
			}
		}
		fmt.Println()
	}

	if show("fig6") {
		fmt.Println("## Figure 6 — top 30 contributors to the maximal offload potential (Mbps)")
		fmt.Printf("%-26s %9s %10s %11s %12s\n", "network", "originIn", "destOut", "transientIn", "transientOut")
		for _, c := range study.TopContributors(30) {
			fmt.Printf("%-26s %9.1f %10.1f %11.1f %12.1f\n", c.Name,
				c.OriginInBps/1e6, c.DestOutBps/1e6, c.TransientInBps/1e6, c.TransientOutBps/1e6)
		}
		fmt.Println()
	}

	if show("fig7") {
		fmt.Println("## Figure 7 — offload potential at a single IXP (Gbps), top 10 per peer group")
		top := study.SingleIXP(remotepeering.GroupAll)
		if len(top) > 10 {
			top = top[:10]
		}
		fmt.Printf("%-12s", "IXP")
		for _, g := range remotepeering.PeerGroups {
			fmt.Printf(" %9s", fmt.Sprintf("group%d", int(g)))
		}
		fmt.Println()
		for _, p := range top {
			fmt.Printf("%-12s", p.Acronym)
			for _, g := range remotepeering.PeerGroups {
				gi, go_ := study.Potential([]int{p.IXPIndex}, g)
				fmt.Printf(" %9.2f", (gi+go_)/1e9)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if show("fig8") {
		fmt.Println("## Figure 8 — residual potential at a second IXP (Gbps, all policies)")
		names := []string{"AMS-IX", "LINX", "DE-CIX", "Terremark"}
		idx := make([]int, len(names))
		for i, n := range names {
			_, j, err := w.IXPByAcronym(n)
			if err != nil {
				fatal(err)
			}
			idx[i] = j
		}
		fmt.Printf("%-12s %8s", "IXP", "full")
		for _, n := range names {
			fmt.Printf(" %12s", "after "+n[:min(6, len(n))])
		}
		fmt.Println()
		for i, n := range names {
			gi, go_ := study.Potential([]int{idx[i]}, remotepeering.GroupAll)
			fmt.Printf("%-12s %8.2f", n, (gi+go_)/1e9)
			for j := range names {
				if i == j {
					fmt.Printf(" %12s", "-")
					continue
				}
				fmt.Printf(" %12.2f", study.Residual(idx[j], idx[i], remotepeering.GroupAll)/1e9)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if show("fig9") {
		fmt.Println("## Figure 9 — remaining transit traffic vs number of reached IXPs (Gbps)")
		fmt.Printf("%6s", "IXPs")
		for _, g := range remotepeering.PeerGroups {
			fmt.Printf(" %16s", fmt.Sprintf("group%d(rem%%)", int(g)))
		}
		fmt.Println()
		var curves [][]remotepeering.GreedyStep
		for _, g := range remotepeering.PeerGroups {
			curves = append(curves, study.Greedy(g, 30))
		}
		total := in + out
		for step := 0; step < 30; step++ {
			fmt.Printf("%6d", step+1)
			for _, curve := range curves {
				if step < len(curve) {
					rem := curve[step].Remaining()
					fmt.Printf(" %8.2f (%4.1f%%)", rem/1e9, 100*rem/total)
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if show("fig10") {
		fmt.Println("## Figure 10 — IP interfaces reachable only through transit (billions)")
		fmt.Printf("start: %.2f B\n", study.TotalInterfaces()/1e9)
		fmt.Printf("%6s", "IXPs")
		for _, g := range remotepeering.PeerGroups {
			fmt.Printf(" %10s", fmt.Sprintf("group%d", int(g)))
		}
		fmt.Println()
		var curves [][]float64
		for _, g := range remotepeering.PeerGroups {
			steps := study.GreedyInterfaces(g, 30)
			vals := make([]float64, len(steps))
			for i, s := range steps {
				vals[i] = s.Remaining
			}
			curves = append(curves, vals)
		}
		for step := 0; step < 30; step++ {
			fmt.Printf("%6d", step+1)
			for _, c := range curves {
				if step < len(c) {
					fmt.Printf(" %10.3f", c[step]/1e9)
				}
			}
			fmt.Println()
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
