// Command rpspread reproduces Section 3 of the paper: it generates the
// synthetic world, runs the four-month looking-glass campaign across the
// 22 studied IXPs, applies the six-filter detector, and prints Table 1 and
// Figures 2, 3, 4a and 4b, plus a ground-truth validation the paper could
// only sample (Section 3.3).
//
// Usage:
//
//	rpspread [-seed N] [-measure-seed N] [-leaves N] [-only table1,fig2,...]
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"remotepeering"
	"remotepeering/internal/cli"
)

var fatal = cli.Fataler("rpspread")

func main() {
	common := cli.CommonFlags()
	snapFlags := cli.SnapshotFlags()
	measureSeed := flag.Int64("measure-seed", 2, "measurement-side seed")
	only := flag.String("only", "", "comma-separated subset: table1,fig2,fig3,fig4a,fig4b,validate")
	flag.Parse()
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()
	show := cli.Selector(*only)

	start := time.Now()
	w, snap, err := snapFlags.ResolveWorld(common)
	if err != nil {
		fatal(err)
	}
	var res *remotepeering.SpreadResult
	if snap != nil && snap.Spread != nil && snap.Spread.Seed == *measureSeed {
		// The snapshot carries this exact campaign: the rehydrated report
		// is byte-identical to a re-run, minus the four-month simulation.
		res = snap.Spread
	} else {
		res, err = remotepeering.RunSpreadStudy(w, remotepeering.SpreadOptions{Seed: *measureSeed, Workers: *common.Workers})
		if err != nil {
			fatal(err)
		}
	}
	out := cli.MergeSnapshot(snap, w)
	out.Spread = res
	if err := snapFlags.SaveSnapshot(out); err != nil {
		fatal(err)
	}
	rep := res.Report
	fmt.Printf("# spread study: %d observations, %d analyzed interfaces (%.1fs)\n\n",
		res.Observations, len(rep.Analyzed()), time.Since(start).Seconds())

	if show("table1") {
		fmt.Println("## Table 1 — studied IXPs and analyzed interfaces")
		fmt.Printf("%-10s %8s %9s %7s\n", "IXP", "probed", "analyzed", "remote")
		for _, row := range rep.Table1() {
			fmt.Printf("%-10s %8d %9d %7d\n", row.Acronym, row.Probed, row.Analyzed, row.Remote)
		}
		fmt.Println("discards by filter:")
		for _, f := range []remotepeering.Filter{
			remotepeering.FilterSampleSize, remotepeering.FilterTTLSwitch,
			remotepeering.FilterTTLMatch, remotepeering.FilterRTTConsistent,
			remotepeering.FilterLGConsistent, remotepeering.FilterASNChange,
		} {
			fmt.Printf("  %-15s %d\n", f, rep.Discards[f])
		}
		fmt.Println()
	}

	if show("fig2") {
		fmt.Println("## Figure 2 — CDF of minimum RTTs (ms)")
		cdf, err := rep.Figure2CDF()
		if err != nil {
			fatal(err)
		}
		for _, ms := range []float64{0.1, 0.3, 0.5, 1, 2, 5, 10, 20, 50, 100, 200} {
			fmt.Printf("  F(%6.1f ms) = %.4f\n", ms, cdf.At(ms))
		}
		fmt.Println()
	}

	if show("fig3") {
		fmt.Println("## Figure 3 — interface classification per IXP (minimum-RTT ranges)")
		fmt.Printf("%-10s %7s %9s %11s %10s\n", "IXP", "<10ms", "10-20ms", "20-50ms", ">=50ms")
		for _, row := range rep.Figure3() {
			fmt.Printf("%-10s %7d %9d %11d %10d\n", row.Acronym,
				row.Counts[0], row.Counts[1], row.Counts[2], row.Counts[3])
		}
		withRemote, total := rep.IXPsWithRemotePeering()
		fmt.Printf("IXPs with remote peering: %d of %d (%.0f%%); with intercontinental: %d\n\n",
			withRemote, total, 100*float64(withRemote)/float64(total), rep.IXPsWithIntercontinental())
	}

	if show("fig4a") {
		fmt.Println("## Figure 4a — IXP-count distributions")
		all, remote := rep.Figure4a()
		counts := make([]int, 0, len(all))
		for c := range all {
			counts = append(counts, c)
		}
		sort.Ints(counts)
		fmt.Printf("%9s %12s %17s\n", "IXPcount", "identified", "remotely-peering")
		totalNets, remoteNets := 0, 0
		for _, c := range counts {
			fmt.Printf("%9d %12d %17d\n", c, all[c], remote[c])
			totalNets += all[c]
			remoteNets += remote[c]
		}
		fmt.Printf("identified networks: %d, remotely peering: %d\n\n", totalNets, remoteNets)
	}

	if show("fig4b") {
		fmt.Println("## Figure 4b — interface classes of remotely peering networks, by IXP count")
		fr := rep.Figure4b()
		counts := make([]int, 0, len(fr))
		for c := range fr {
			counts = append(counts, c)
		}
		sort.Ints(counts)
		fmt.Printf("%9s %8s %9s %11s %10s\n", "IXPcount", "<10ms", "10-20ms", "20-50ms", ">=50ms")
		for _, c := range counts {
			f := fr[c]
			fmt.Printf("%9d %8.2f %9.2f %11.2f %10.2f\n", c, f[0], f[1], f[2], f[3])
		}
		fmt.Println()
	}

	if show("validate") {
		v := res.Validation
		fmt.Println("## Ground-truth validation (Section 3.3, exhaustive)")
		fmt.Printf("  TP=%d FP=%d TN=%d FN=%d  precision=%.3f recall=%.3f\n",
			v.TruePositives, v.FalsePositives, v.TrueNegatives, v.FalseNegatives,
			v.Precision(), v.Recall())
	}
}
