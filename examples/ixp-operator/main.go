// IXP-operator scenario: an exchange operator wants to know which of its
// members connect through remote-peering providers (the paper's TorIX
// validation, Section 3.3, run from the operator's side). The example
// measures one IXP, lists every detected remote peer with its minimum RTT
// and distance class, and then compares the detector's verdicts with the
// fabric's ground truth — including the conservative false negatives that
// a 10 ms threshold accepts by design.
//
//	go run ./examples/ixp-operator
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"remotepeering"
)

func main() {
	world, err := remotepeering.GenerateWorld(remotepeering.WorldConfig{
		Seed:         2014,
		LeafNetworks: 6000,
	})
	if err != nil {
		log.Fatal(err)
	}

	const acronym = "France-IX" // single-LG, remote peers in every band
	ixp, idx, err := world.IXPByAcronym(acronym)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditing %s (%s): %d membership ports, %d listed in public registries\n\n",
		ixp.Acronym, ixp.City(), len(ixp.Members), world.RegistryIfaceTarget(idx))

	result, err := remotepeering.RunSpreadStudy(world, remotepeering.SpreadOptions{
		Seed: 99,
		IXPs: []int{idx},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth from the fabric configuration (which a real operator
	// has, and which the paper's TorIX contacts consulted).
	type groundTruth struct {
		Remote     bool
		AccessCity string
		Provider   string
	}
	truth := map[netip.Addr]groundTruth{}
	for _, m := range ixp.Members {
		truth[m.IP] = groundTruth{
			Remote:     m.Remote,
			AccessCity: m.AccessCity,
			Provider:   m.Provider,
		}
	}

	fmt.Println("detected remote peers:")
	fmt.Printf("%-16s %9s %-17s %-14s %-20s\n", "interface", "minRTT", "class", "actual city", "actual provider")
	for _, iface := range result.Report.Analyzed() {
		if !iface.Remote {
			continue
		}
		gt := truth[iface.IP]
		fmt.Printf("%-16s %7.1fms %-17s %-14s %-20s\n",
			iface.IP, float64(iface.MinRTT)/float64(time.Millisecond),
			iface.Class, gt.AccessCity, gt.Provider)
	}

	// The conservative threshold misses nearby remote peers — the paper
	// accepts these false negatives to avoid false positives.
	fmt.Println("\nremote peers the 10 ms threshold cannot see (expected false negatives):")
	missed := 0
	for _, iface := range result.Report.Analyzed() {
		gt := truth[iface.IP]
		if gt.Remote && !iface.Remote {
			fmt.Printf("  %-16s minRTT %.1f ms, access city %s\n",
				iface.IP, float64(iface.MinRTT)/float64(time.Millisecond), gt.AccessCity)
			missed++
		}
	}
	if missed == 0 {
		fmt.Println("  (none at this IXP)")
	}

	v := result.Validation
	fmt.Printf("\nsummary: %d true positives, %d false positives, %d false negatives — precision %.3f\n",
		v.TruePositives, v.FalsePositives, v.FalseNegatives, v.Precision())
}
