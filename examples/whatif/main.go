// What-if: how fragile is the NREN's offload plan to a single point of
// failure? The scenario engine answers by taking the largest offload IXP
// dark, shifting the remote-peering latency regime, and repricing the
// remote market — each on a deterministic clone of the world — and diffing
// every outcome against the unperturbed baseline.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"time"

	"remotepeering"
)

func main() {
	// A reduced world keeps the example fast; drop LeafNetworks (and the
	// campaign override below) for the paper-scale run.
	world, err := remotepeering.GenerateWorld(remotepeering.WorldConfig{
		Seed:         42,
		LeafNetworks: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Which exchange matters most? Ask the offload analysis first, then
	// knock exactly that one out.
	ds, err := remotepeering.CollectTraffic(world, remotepeering.TrafficConfig{Seed: 3, Intervals: 288})
	if err != nil {
		log.Fatal(err)
	}
	study, err := remotepeering.NewOffloadStudy(world, ds)
	if err != nil {
		log.Fatal(err)
	}
	best := study.SingleIXP(remotepeering.GroupAll)[0]
	fmt.Printf("largest standalone offload IXP: %s (%.2f Gbps potential)\n\n",
		best.Acronym, best.Total()/1e9)

	// Probe two big exchanges plus the outage victim itself (when it is
	// one of the 22 studied IXPs), so the detector-side impact shows up
	// alongside the offload-side one.
	probed := []int{0, 2}
	if best.IXPIndex < world.NumStudied() && best.IXPIndex != 0 && best.IXPIndex != 2 {
		probed = append(probed, best.IXPIndex)
	}

	grid := remotepeering.ScenarioGrid{
		Scenarios: []remotepeering.Scenario{
			{Name: "big-outage", Ops: []remotepeering.ScenarioOp{
				remotepeering.IXPOutage{IXP: best.Acronym},
			}},
			{Name: "fast-pseudowires", Ops: []remotepeering.ScenarioOp{
				remotepeering.LatencyShift{Band: remotepeering.BandIntercity, DeltaMs: -3},
			}},
			{Name: "remote-price-drop", Ops: []remotepeering.ScenarioOp{
				remotepeering.RemotePrice{Factor: 0.5},
			}},
		},
	}
	report, err := remotepeering.RunScenarios(world, grid, remotepeering.ScenarioOptions{
		MeasureSeed: 2,
		TrafficSeed: 3,
		// A short campaign over the probed subset keeps the example
		// fast; the offload metrics still cover all 65 exchanges.
		IXPs:         probed,
		Campaign:     remotepeering.CampaignConfig{Duration: 8 * 24 * time.Hour, PCHRounds: 3, RIPERounds: 3},
		Intervals:    288,
		CoverageIXPs: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Text())

	base := report.Baseline
	for _, cell := range report.Cells {
		if cell.Scenario != "big-outage" {
			continue
		}
		d := cell.Diff(base)
		fmt.Printf("\nlosing %s moves offload coverage at 5 IXPs by %+.1f points "+
			"(%.1f%% → %.1f%%) and hides %d detected remote interfaces\n",
			best.Acronym, 100*d.OffloadedFrac,
			100*base.OffloadedFrac, 100*cell.Metrics.OffloadedFrac, -d.DetectedRemote)
	}
}
