// Layer-3 invisibility: the paper's central argument, executable. From a
// looking glass, traceroute sees every IXP member — remote or direct — as
// exactly one IP hop away, because the remote-peering provider operates on
// layer 2. Only delay gives the remote peers away. This example runs both
// probes against every member of one IXP and tabulates the contrast; it is
// also why the paper argues AS-level (layer-3) topologies misrepresent the
// Internet's economic structure.
//
//	go run ./examples/layer3-invisibility
package main

import (
	"fmt"
	"log"
	"time"

	"remotepeering"
)

func main() {
	world, err := remotepeering.GenerateWorld(remotepeering.WorldConfig{
		Seed:         99,
		LeafNetworks: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, idx, err := world.IXPByAcronym("TOP-IX") // the highest remote fraction
	if err != nil {
		log.Fatal(err)
	}

	results, err := remotepeering.CompareLayer3Visibility(world, idx, 7)
	if err != nil {
		log.Fatal(err)
	}

	var hopCounts = map[int]int{}
	routersSeen := 0
	var remoteRTTs, directRTTs []time.Duration
	for _, r := range results {
		hopCounts[r.HopCount]++
		if r.SawRouter {
			routersSeen++
		}
		if r.MinRTT == 0 {
			continue
		}
		if r.TrueRemote {
			remoteRTTs = append(remoteRTTs, r.MinRTT)
		} else {
			directRTTs = append(directRTTs, r.MinRTT)
		}
	}

	fmt.Printf("probed %d member interfaces at TOP-IX\n\n", len(results))
	fmt.Println("what layer-3 path discovery sees:")
	for hops, n := range hopCounts {
		label := fmt.Sprintf("%d hop(s)", hops)
		if hops == -1 {
			label = "no answer"
		}
		fmt.Printf("  %-10s %d interfaces\n", label, n)
	}
	if routersSeen > 0 {
		fmt.Printf("  intermediate routers answered for %d interfaces — stale registry\n", routersSeen)
		fmt.Println("  entries pointing off the peering LAN, never a remote-peering")
		fmt.Println("  pseudowire. (multi-hop rows without a router are lost probes,")
		fmt.Println("  shown as '*' by real traceroute)")
	} else {
		fmt.Println("  no intermediate router ever answered; multi-hop rows are lost")
		fmt.Println("  probes (real traceroute prints them as '*')")
	}
	fmt.Println("  → remote and direct members are indistinguishable: the")
	fmt.Println("    remote-peering provider is a layer-2 middleman that no")
	fmt.Println("    traceroute or BGP feed can expose.")

	fmt.Println("\nwhat delay measurement sees:")
	fmt.Printf("  direct members: min RTT %v .. %v (%d interfaces)\n",
		minOf(directRTTs), maxOf(directRTTs), len(directRTTs))
	fmt.Printf("  remote members: min RTT %v .. %v (%d interfaces)\n",
		minOf(remoteRTTs), maxOf(remoteRTTs), len(remoteRTTs))
	fmt.Println("  → the populations separate around the paper's 10 ms threshold,")
	fmt.Println("    which is why the detector is built on ping, not traceroute.")
}

func minOf(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m.Round(10 * time.Microsecond)
}

func maxOf(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d > m {
			m = d
		}
	}
	return m.Round(10 * time.Microsecond)
}
