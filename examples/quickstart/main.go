// Quickstart: generate a small synthetic world, run the remote-peering
// detector over two IXPs, and check it against ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"remotepeering"
)

func main() {
	// A reduced world (5,000 leaf networks) keeps the quickstart fast;
	// drop LeafNetworks for the paper-scale run.
	world, err := remotepeering.GenerateWorld(remotepeering.WorldConfig{
		Seed:         42,
		LeafNetworks: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Measure two of the studied IXPs: AMS-IX (the largest, with both
	// PCH and RIPE NCC looking glasses) and TorIX (the paper's
	// ground-truth validation IXP).
	_, ams, err := world.IXPByAcronym("AMS-IX")
	if err != nil {
		log.Fatal(err)
	}
	_, tor, err := world.IXPByAcronym("TorIX")
	if err != nil {
		log.Fatal(err)
	}

	result, err := remotepeering.RunSpreadStudy(world, remotepeering.SpreadOptions{
		Seed: 7,
		IXPs: []int{ams, tor},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collected %d ping observations\n\n", result.Observations)
	for _, row := range result.Report.Table1() {
		fmt.Printf("%-8s probed %4d, analyzed %4d, detected remote peers %3d\n",
			row.Acronym, row.Probed, row.Analyzed, row.Remote)
	}

	v := result.Validation
	fmt.Printf("\nagainst simulator ground truth: precision %.3f, recall %.3f (FP=%d FN=%d)\n",
		v.Precision(), v.Recall(), v.FalsePositives, v.FalseNegatives)

	cdf, err := result.Report.Figure2CDF()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum-RTT distribution: median %.2f ms, 90th pct %.2f ms, share below the 10 ms threshold %.1f%%\n",
		cdf.Quantile(0.5), cdf.Quantile(0.9), 100*cdf.At(10))
}
