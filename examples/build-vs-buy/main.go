// Build-vs-buy scenario: the paper's Section 5 as a decision aid. A network
// knows how its transit traffic decays with each reached IXP (the fitted b)
// and its local prices; the example walks through equations 11, 13 and 14
// to decide between staying on transit, building out for direct peering,
// and buying remote peering — for three archetypes the paper discusses: a
// global content network (low b), a regional eyeball network (high b), and
// an African operator facing expensive transit and cheap remote peering.
//
//	go run ./examples/build-vs-buy
package main

import (
	"fmt"
	"math"

	"remotepeering"
)

func main() {
	archetypes := []struct {
		name   string
		params remotepeering.EconParams
		note   string
	}{
		{
			name:   "global content network",
			params: remotepeering.EconParams{P: 1.0, G: 0.08, U: 0.15, H: 0.02, V: 0.45, B: 0.15},
			note:   "traffic spread worldwide: each extra IXP offloads little (low b)",
		},
		{
			name:   "regional eyeball network",
			params: remotepeering.EconParams{P: 1.0, G: 0.08, U: 0.15, H: 0.02, V: 0.45, B: 1.4},
			note:   "traffic concentrated at the nearest big IXP (high b)",
		},
		{
			name:   "African operator (expensive transit, cheap remote)",
			params: remotepeering.EconParams{P: 2.5, G: 0.30, U: 0.15, H: 0.015, V: 0.45, B: 0.6},
			note:   "h ≪ g: little local offload, long expensive haul to Europe",
		},
	}

	for _, a := range archetypes {
		p := a.params
		if err := p.Validate(); err != nil {
			fmt.Printf("%s: invalid parameters: %v\n", a.name, err)
			continue
		}
		fmt.Printf("## %s\n   %s\n", a.name, a.note)

		n := math.Max(0, p.OptimalDirectN())
		m := math.Max(0, p.OptimalRemoteM())
		allTransit := p.TotalCost(0, 0)
		directOnly := p.TotalCost(n, 0)
		withRemote := p.TotalCost(n, m)

		fmt.Printf("   optimal build-out: ñ = %.1f direct IXPs  (eq. 11)\n", n)
		fmt.Printf("   optimal purchase:  m̃ = %.1f remote IXPs  (eq. 13)\n", m)
		fmt.Printf("   viability (eq. 14): ratio %.2f vs e^b %.2f ⇒ remote peering %s\n",
			p.ViabilityRatio(), math.Exp(p.B), verdict(p.RemoteViable()))
		fmt.Printf("   cost: all-transit %.3f → direct-only %.3f → direct+remote %.3f\n\n",
			allTransit, directOnly, withRemote)
	}

	// The sensitivity the paper highlights: remote peering pays off for
	// networks whose traffic is global (b below the threshold b*).
	p := remotepeering.DefaultEconParams(0)
	fmt.Printf("viability threshold for the reference prices: b* = %.2f\n", p.ViabilityThresholdB())
	fmt.Println("networks with b below the threshold (global traffic) should buy remote peering;")
	fmt.Println("networks above it (local traffic) are better served by transit or direct builds.")
}

func verdict(viable bool) string {
	if viable {
		return "pays off"
	}
	return "does not pay off"
}
