// NREN traffic-engineering scenario: the paper's Section 4 from the
// perspective of the network that would buy remote peering. The example
// collects a month of border traffic, asks which IXPs are worth reaching
// under each peering assumption, shows the diminishing returns after the
// first handful of exchanges, and estimates the 95th-percentile billing
// relief that drives the business case.
//
//	go run ./examples/nren-planning
package main

import (
	"fmt"
	"log"

	"remotepeering"
)

func main() {
	world, err := remotepeering.GenerateWorld(remotepeering.WorldConfig{
		Seed:         7,
		LeafNetworks: 6000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A week of 5-minute samples keeps the example quick.
	traffic, err := remotepeering.CollectTraffic(world, remotepeering.TrafficConfig{
		Seed:      8,
		Intervals: 2016,
	})
	if err != nil {
		log.Fatal(err)
	}
	in, out := traffic.TransitTotals()
	fmt.Printf("transit-provider traffic: %.2f Gbps in, %.2f Gbps out across %d networks\n\n",
		in/1e9, out/1e9, len(traffic.TransitEntries()))

	study, err := remotepeering.NewOffloadStudy(world, traffic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("potential remote peers after exclusions: %d\n\n", study.PotentialPeerCount())

	// Which single IXP gives the most relief?
	fmt.Println("best single IXPs (all policies):")
	for _, p := range study.SingleIXP(remotepeering.GroupAll)[:5] {
		fmt.Printf("  %-12s %.2f Gbps offloadable\n", p.Acronym, p.Total()/1e9)
	}

	// Diminishing returns: how far do five exchanges take us?
	fmt.Println("\ngreedy expansion (all policies):")
	steps := study.Greedy(remotepeering.GroupAll, 8)
	total := in + out
	for i, s := range steps {
		fmt.Printf("  %d. %-12s remaining transit %.2f Gbps (%.1f%%)\n",
			i+1, s.Acronym, s.Remaining()/1e9, 100*s.Remaining()/total)
	}
	achievable := steps[len(steps)-1].OffloadedInBps + steps[len(steps)-1].OffloadedOutBps
	at3 := steps[2].OffloadedInBps + steps[2].OffloadedOutBps
	fmt.Printf("  → the first 3 IXPs already realise %.0f%% of what 8 can\n", 100*at3/achievable)

	// The bill is set by the 95th percentile, so check that peaks of the
	// offloadable traffic coincide with the transit peaks (Figure 5b).
	fmt.Println("\n95th-percentile billing view (inbound, first week):")
	covered := study.Covered(ixpIndices(world), remotepeering.GroupAll)
	allIn, _ := traffic.SeriesTotal(nil)
	offIn, _ := traffic.SeriesTotal(covered)
	p95All, err := remotepeering.P95(allIn)
	if err != nil {
		log.Fatal(err)
	}
	residual := make([]float64, len(allIn))
	for i := range allIn {
		residual[i] = allIn[i] - offIn[i]
	}
	p95After, err := remotepeering.P95(residual)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  p95 before offload: %.2f Gbps, after: %.2f Gbps (−%.1f%% on the transit bill)\n",
		p95All/1e9, p95After/1e9, 100*(p95All-p95After)/p95All)

	// How much does the peering-policy assumption matter?
	fmt.Println("\noffload by peer group (all 65 IXPs):")
	for _, g := range remotepeering.PeerGroups {
		gi, gOut := study.Potential(ixpIndices(world), g)
		fmt.Printf("  %-46s %.2f Gbps (%.1f%%)\n", g, (gi+gOut)/1e9, 100*(gi+gOut)/total)
	}
}

func ixpIndices(w *remotepeering.World) []int {
	out := make([]int, len(w.IXPs))
	for i := range out {
		out[i] = i
	}
	return out
}
