package remotepeering

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// smallWorld builds a reduced world once for the facade tests.
var worldCache *World

func smallWorld(t *testing.T) *World {
	t.Helper()
	if worldCache == nil {
		w, err := GenerateWorld(WorldConfig{Seed: 3, LeafNetworks: 5000})
		if err != nil {
			t.Fatal(err)
		}
		worldCache = w
	}
	return worldCache
}

func TestRunSpreadStudySubset(t *testing.T) {
	w := smallWorld(t)
	res, err := RunSpreadStudy(w, SpreadOptions{
		Seed: 9,
		IXPs: []int{13, 19}, // VIX (dual LG), INEX (small)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Observations == 0 {
		t.Fatal("no observations")
	}
	if len(res.Report.Analyzed()) == 0 {
		t.Fatal("no analyzed interfaces")
	}
	if res.Validation.FalsePositives != 0 {
		t.Errorf("false positives: %+v", res.Validation)
	}
	if res.Validation.Recall() < 0.9 {
		t.Errorf("recall = %v", res.Validation.Recall())
	}
	rows := res.Report.Table1()
	if len(rows) != 2 {
		t.Errorf("Table1 rows = %d", len(rows))
	}
}

func TestRunSpreadStudyNilWorld(t *testing.T) {
	if _, err := RunSpreadStudy(nil, SpreadOptions{}); err == nil {
		t.Error("want error for nil world")
	}
}

func TestRunSpreadStudyCustomCampaign(t *testing.T) {
	w := smallWorld(t)
	res, err := RunSpreadStudy(w, SpreadOptions{
		Seed:     4,
		IXPs:     []int{19},
		Campaign: CampaignConfig{Duration: 30 * 24 * time.Hour, PCHRounds: 3, RIPERounds: 2},
		Detector: DetectorConfig{MinRepliesPerLG: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Analyzed()) == 0 {
		t.Error("shortened campaign with relaxed sample floor should still analyze interfaces")
	}
}

func TestOffloadPipelineThroughFacade(t *testing.T) {
	w := smallWorld(t)
	ds, err := CollectTraffic(w, TrafficConfig{Seed: 5, Intervals: 288})
	if err != nil {
		t.Fatal(err)
	}
	study, err := NewOffloadStudy(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	steps := study.Greedy(GroupAll, 10)
	if len(steps) != 10 {
		t.Fatalf("steps = %d", len(steps))
	}

	// Fit the decay and feed it into the econ model end-to-end.
	in, out := ds.TransitTotals()
	total := in + out
	var remaining []float64
	for _, s := range steps {
		remaining = append(remaining, s.Remaining()/total)
	}
	fit, err := FitDecay(remaining)
	if err != nil {
		t.Fatal(err)
	}
	if fit.B <= 0 {
		t.Errorf("fitted b = %v, want positive decay", fit.B)
	}
	params := DefaultEconParams(fit.B)
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}
	// With a tiny fitted b (most traffic not offloadable), viability can
	// go either way; just exercise the calls.
	_ = params.RemoteViable()
	_ = params.OptimalDirectN()
}

func TestPeerGroupsExported(t *testing.T) {
	if len(PeerGroups) != 4 {
		t.Fatalf("PeerGroups = %v", PeerGroups)
	}
	if PeerGroups[0] != GroupOpen || PeerGroups[3] != GroupAll {
		t.Error("group ordering wrong")
	}
}

func TestRegistryFromWorld(t *testing.T) {
	w := smallWorld(t)
	reg := RegistryFromWorld(w)
	if reg.Len() != len(w.Ifaces) {
		t.Errorf("registry %d entries, world %d interfaces", reg.Len(), len(w.Ifaces))
	}
}

func TestDeterministicFacadeRuns(t *testing.T) {
	w := smallWorld(t)
	run := func() float64 {
		res, err := RunSpreadStudy(w, SpreadOptions{Seed: 11, IXPs: []int{19}})
		if err != nil {
			t.Fatal(err)
		}
		cdf, err := res.Report.Figure2CDF()
		if err != nil {
			t.Fatal(err)
		}
		return cdf.Quantile(0.5)
	}
	a, b := run(), run()
	if math.Abs(a-b) > 0 {
		t.Errorf("same seed gave different medians: %v vs %v", a, b)
	}
}

func TestObservationsCSVRoundTripFacade(t *testing.T) {
	w := smallWorld(t)
	res, err := RunSpreadStudy(w, SpreadOptions{Seed: 21, IXPs: []int{19}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteObservationsCSV(&buf, res.Raw); err != nil {
		t.Fatal(err)
	}
	back, err := ReadObservationsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Raw) {
		t.Fatalf("%d of %d observations", len(back), len(res.Raw))
	}
	// Re-analysis of the restored observations gives identical verdicts.
	rep, err := AnalyzeObservations(back, RegistryFromWorld(w), res.Campaign.Duration, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Analyzed()) != len(res.Report.Analyzed()) {
		t.Error("re-analysis after round trip differs")
	}
}

func TestCompareLayer3Visibility(t *testing.T) {
	w := smallWorld(t)
	_, idx, err := w.IXPByAcronym("TOP-IX")
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareLayer3Visibility(w, idx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no probe comparisons")
	}
	remoteSeen := false
	for _, r := range results {
		if r.TrueRemote {
			remoteSeen = true
			// The pseudowire must be invisible to layer-3 discovery: no
			// intermediate router ever answers for a remote member
			// (lost probes may still pad the hop count with timeouts).
			if r.SawRouter {
				t.Errorf("%s: a router answered on the path to a remote member; the pseudowire must be layer-2 invisible", r.IP)
			}
			if r.MinRTT > 0 && r.MinRTT < 5*time.Millisecond {
				t.Errorf("%s: remote member with %v min RTT", r.IP, r.MinRTT)
			}
		}
	}
	if !remoteSeen {
		t.Error("TOP-IX should host remote members")
	}
	if _, err := CompareLayer3Visibility(nil, 0, 1); err == nil {
		t.Error("want error for nil world")
	}
}
