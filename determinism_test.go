package remotepeering

// The determinism regression suite enforces the parallel execution layer's
// core invariant: every pipeline stage produces byte-identical results for
// every worker count, given the same seed. This is what makes campaigns
// replayable for debugging regardless of the hardware they ran on, and it
// is the contract future sharding/batching work must keep.

import (
	"reflect"
	"testing"
	"time"
)

// workerCounts are the fan-outs the invariant is checked at: serial, the
// smallest genuine pool, and more workers than this container has cores.
var workerCounts = []int{1, 2, 8}

// detWorld builds one reduced-scale world shared by the determinism tests.
var detWorldCache *World

func detWorld(t *testing.T) *World {
	t.Helper()
	if detWorldCache == nil {
		w, err := GenerateWorld(WorldConfig{Seed: 17, LeafNetworks: 5000})
		if err != nil {
			t.Fatal(err)
		}
		detWorldCache = w
	}
	return detWorldCache
}

func TestGenerateWorldIdenticalAcrossWorkers(t *testing.T) {
	base, err := GenerateWorld(WorldConfig{Seed: 23, LeafNetworks: 1500, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts[1:] {
		w, err := GenerateWorld(WorldConfig{Seed: 23, LeafNetworks: 1500, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(w.Ifaces, base.Ifaces) {
			t.Errorf("workers=%d: interface table differs from workers=1", workers)
		}
		for i := range base.IXPs {
			if !reflect.DeepEqual(w.IXPs[i].Members, base.IXPs[i].Members) {
				t.Errorf("workers=%d: IXP %s membership differs", workers, base.IXPs[i].Acronym)
			}
		}
	}
}

func TestRunSpreadStudyIdenticalAcrossWorkers(t *testing.T) {
	w := detWorld(t)
	opts := func(workers int) SpreadOptions {
		return SpreadOptions{
			Seed:    31,
			IXPs:    []int{0, 7, 13, 19}, // AMS-IX (big), MSK-IX (multi-site), VIX (dual LG), INEX (small)
			Workers: workers,
			Campaign: CampaignConfig{
				Duration:   30 * 24 * time.Hour,
				PCHRounds:  4,
				RIPERounds: 3,
			},
		}
	}
	base, err := RunSpreadStudy(w, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.Observations == 0 {
		t.Fatal("no observations in base run")
	}
	for _, workers := range workerCounts[1:] {
		res, err := RunSpreadStudy(w, opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Raw, base.Raw) {
			t.Errorf("workers=%d: raw observation stream differs from workers=1", workers)
		}
		if !reflect.DeepEqual(res.Report, base.Report) {
			t.Errorf("workers=%d: detector report differs from workers=1", workers)
		}
		if res.Validation != base.Validation {
			t.Errorf("workers=%d: validation %+v != %+v", workers, res.Validation, base.Validation)
		}
	}
}

func TestCollectTrafficIdenticalAcrossWorkers(t *testing.T) {
	w := detWorld(t)
	collect := func(workers int) *TrafficDataset {
		ds, err := CollectTraffic(w, TrafficConfig{Seed: 37, Intervals: 288, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	base := collect(1)
	baseIn, baseOut := base.SeriesTotal(nil)
	for _, workers := range workerCounts[1:] {
		ds := collect(workers)
		if !reflect.DeepEqual(ds.Entries, base.Entries) {
			t.Errorf("workers=%d: dataset entries differ from workers=1", workers)
		}
		in, out := ds.SeriesTotal(nil)
		// Bit-identical series, not merely close: the interval-sharded
		// synthesis must not change floating-point addition order.
		if !reflect.DeepEqual(in, baseIn) || !reflect.DeepEqual(out, baseOut) {
			t.Errorf("workers=%d: synthesized series differ from workers=1", workers)
		}
		gi, go_ := ds.TransitTotals()
		bi, bo := base.TransitTotals()
		if gi != bi || go_ != bo {
			t.Errorf("workers=%d: transit totals (%v,%v) != (%v,%v)", workers, gi, go_, bi, bo)
		}
		// Transient (Figure 6) accounting is the one stage rebuilt as a
		// block-merged floating-point reduction, so check it explicitly
		// for every ASN in the universe — not just the entry fields.
		for _, asn := range w.Graph.ASNs() {
			gt, gin, gout := ds.Transient(asn)
			bt, bin, bout := base.Transient(asn)
			if gt != bt || gin != bin || gout != bout {
				t.Errorf("workers=%d: transient accounting for AS%d differs: (%v,%v,%v) != (%v,%v,%v)",
					workers, asn, gt, gin, gout, bt, bin, bout)
				break
			}
		}
	}
}

func TestGreedyIdenticalAcrossWorkers(t *testing.T) {
	w := detWorld(t)
	ds, err := CollectTraffic(w, TrafficConfig{Seed: 41, Intervals: 288})
	if err != nil {
		t.Fatal(err)
	}
	study := func(workers int) *OffloadStudy {
		s, err := NewOffloadStudyOptions(w, ds, OffloadOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := study(1)
	baseSteps := base.Greedy(GroupAll, 0)
	baseIfaces := base.GreedyInterfaces(GroupOpenSelective, 20)
	baseSingle := base.SingleIXP(GroupAll)
	for _, workers := range workerCounts[1:] {
		s := study(workers)
		if steps := s.Greedy(GroupAll, 0); !reflect.DeepEqual(steps, baseSteps) {
			t.Errorf("workers=%d: greedy steps differ from workers=1", workers)
		}
		if ifs := s.GreedyInterfaces(GroupOpenSelective, 20); !reflect.DeepEqual(ifs, baseIfaces) {
			t.Errorf("workers=%d: interface greedy differs from workers=1", workers)
		}
		if single := s.SingleIXP(GroupAll); !reflect.DeepEqual(single, baseSingle) {
			t.Errorf("workers=%d: single-IXP potentials differ from workers=1", workers)
		}
	}
}

// TestBitsetAdaptersAgreeAcrossWorkers pins the contract of the dense
// bitset engine introduced for the Section 4 hot paths: the bitset-valued
// fast paths (CoveredSet, SeriesTotalSet) and their map-valued facade
// adapters (Covered, SeriesTotal) must produce identical results — and
// identical to each other — at every worker count.
func TestBitsetAdaptersAgreeAcrossWorkers(t *testing.T) {
	w := detWorld(t)
	ixps := []int{0, 3, 12, 40, 64}
	type outcome struct {
		coveredASNs []uint32
		in, out     []float64
	}
	run := func(workers int) outcome {
		ds, err := CollectTraffic(w, TrafficConfig{Seed: 47, Intervals: 288, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewOffloadStudyOptions(w, ds, OffloadOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		covered := s.Covered(ixps, GroupOpenSelective)
		set := s.CoveredSet(ixps, GroupOpenSelective)
		if len(covered) != set.Count() {
			t.Fatalf("workers=%d: Covered map has %d networks, CoveredSet %d", workers, len(covered), set.Count())
		}
		var asns []uint32
		set.ForEach(func(id int32) {
			asn := w.Index.ASN(id)
			if !covered[asn] {
				t.Fatalf("workers=%d: CoveredSet contains AS%d missing from Covered map", workers, asn)
			}
			asns = append(asns, uint32(asn))
		})
		mapIn, mapOut := ds.SeriesTotal(covered)
		setIn, setOut := ds.SeriesTotalSet(set)
		if !reflect.DeepEqual(mapIn, setIn) || !reflect.DeepEqual(mapOut, setOut) {
			t.Fatalf("workers=%d: SeriesTotal and SeriesTotalSet disagree for the same selection", workers)
		}
		return outcome{coveredASNs: asns, in: setIn, out: setOut}
	}
	base := run(1)
	if len(base.coveredASNs) == 0 {
		t.Fatal("empty coverage in base run")
	}
	for _, workers := range workerCounts[1:] {
		got := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: bitset-path results differ from workers=1", workers)
		}
	}
}

// scenarioTestGrid is the ≥6-cell what-if matrix the scenario determinism
// and baseline-exactness tests share: three scenarios × two seed offsets
// plus the runner's implicit baseline cell = 7 cells.
func scenarioTestGrid(t *testing.T) ScenarioGrid {
	t.Helper()
	grid, err := ParseScenarioGrid(
		"dark-msk=outage:MSK-IX;" +
			"slow-pw=latency:all:2;" +
			"ams-churn=churn:AMS-IX:10:5,traffic:1.25")
	if err != nil {
		t.Fatal(err)
	}
	grid.Seeds = []int64{0, 1}
	return grid
}

// scenarioTestOptions keeps the per-cell pipeline affordable: a 6-day
// campaign over four studied IXPs and a half-day traffic sample.
func scenarioTestOptions(workers int) ScenarioOptions {
	return ScenarioOptions{
		MeasureSeed:  31,
		TrafficSeed:  37,
		Workers:      workers,
		IXPs:         []int{0, 7, 13, 19}, // AMS-IX, MSK-IX, VIX, INEX
		Campaign:     CampaignConfig{Duration: 6 * 24 * time.Hour, PCHRounds: 3, RIPERounds: 3},
		Intervals:    144,
		CoverageIXPs: 2,
		GreedyIXPs:   10,
	}
}

// TestRunScenariosIdenticalAcrossWorkers extends the determinism suite to
// the scenario engine: a 7-cell grid must produce a deep-equal report at
// every worker count — cell RNG streams are keyed by grid coordinates, so
// neither cell scheduling nor inner-stage fan-out may leak in.
func TestRunScenariosIdenticalAcrossWorkers(t *testing.T) {
	w := detWorld(t)
	grid := scenarioTestGrid(t)
	base, err := RunScenarios(w, grid, scenarioTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Cells) != 7 {
		t.Fatalf("grid expanded to %d cells, want 7", len(base.Cells))
	}
	if base.Baseline.DetectedRemote == 0 || base.Baseline.Observations == 0 {
		t.Fatalf("degenerate baseline cell: %+v", base.Baseline)
	}
	for _, workers := range workerCounts[1:] {
		rep, err := RunScenarios(w, grid, scenarioTestOptions(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, base) {
			t.Errorf("workers=%d: scenario report differs from workers=1", workers)
		}
	}
}

// TestScenarioBaselineReproducesPipeline pins the engine's anchor: the
// implicit empty-op baseline cell must reproduce the unperturbed pipeline
// — the Table 1 detector view and the Figure 9 greedy/decay numbers —
// exactly (integer and float equality, not tolerances), even though it ran
// on a cloned world inside the grid runner.
func TestScenarioBaselineReproducesPipeline(t *testing.T) {
	w := detWorld(t)
	opts := scenarioTestOptions(0)
	rep, err := RunScenarios(w, scenarioTestGrid(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Baseline

	res, err := RunSpreadStudy(w, SpreadOptions{
		Seed: opts.MeasureSeed, IXPs: opts.IXPs, Campaign: opts.Campaign,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Observations != res.Observations {
		t.Errorf("baseline observations %d != pipeline %d", got.Observations, res.Observations)
	}
	if want := len(res.Report.Analyzed()); got.AnalyzedIfaces != want {
		t.Errorf("baseline analyzed %d != pipeline %d", got.AnalyzedIfaces, want)
	}
	wantRemote := 0
	for _, row := range res.Report.Table1() {
		wantRemote += row.Remote
	}
	if got.DetectedRemote != wantRemote {
		t.Errorf("baseline Table 1 remote %d != pipeline %d", got.DetectedRemote, wantRemote)
	}
	var wantBands [3]int
	for _, row := range res.Report.Figure3() {
		wantBands[0] += row.Counts[1]
		wantBands[1] += row.Counts[2]
		wantBands[2] += row.Counts[3]
	}
	if got.BandCounts != wantBands {
		t.Errorf("baseline bands %v != pipeline %v", got.BandCounts, wantBands)
	}

	ds, err := CollectTraffic(w, TrafficConfig{Seed: opts.TrafficSeed, Intervals: opts.Intervals})
	if err != nil {
		t.Fatal(err)
	}
	study, err := NewOffloadStudy(w, ds)
	if err != nil {
		t.Fatal(err)
	}
	if want := study.PotentialPeerCount(); got.PotentialPeers != want {
		t.Errorf("baseline potential peers %d != pipeline %d", got.PotentialPeers, want)
	}
	in, out := ds.TransitTotals()
	steps := study.Greedy(GroupAll, opts.GreedyIXPs)
	at := steps[opts.CoverageIXPs-1]
	if want := (at.OffloadedInBps + at.OffloadedOutBps) / (in + out); got.OffloadedFrac != want {
		t.Errorf("baseline offload fraction %v != pipeline %v", got.OffloadedFrac, want)
	}
	fit, err := FitDecayFromGreedy(steps, in+out)
	if err != nil {
		t.Fatal(err)
	}
	if got.FittedB != fit.B {
		t.Errorf("baseline fitted b %v != pipeline %v", got.FittedB, fit.B)
	}
}

// TestRepeatedRunsIdentical guards the weaker but equally load-bearing
// property that two runs at the *same* worker count are identical — i.e.
// no scheduling- or map-iteration-order dependence leaks into results.
func TestRepeatedRunsIdentical(t *testing.T) {
	w := detWorld(t)
	run := func() ([]GreedyStep, float64) {
		ds, err := CollectTraffic(w, TrafficConfig{Seed: 43, Intervals: 144, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewOffloadStudyOptions(w, ds, OffloadOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		all := make([]int, len(w.IXPs))
		for i := range all {
			all[i] = i
		}
		in, out := s.Potential(all, GroupAll)
		return s.Greedy(GroupAll, 10), in + out
	}
	steps1, pot1 := run()
	steps2, pot2 := run()
	if !reflect.DeepEqual(steps1, steps2) {
		t.Error("two identical runs produced different greedy steps")
	}
	if pot1 != pot2 {
		t.Errorf("two identical runs produced different potentials: %v vs %v", pot1, pot2)
	}
}
