// Package remotepeering is a Go reproduction of "Remote Peering: More
// Peering without Internet Flattening" (Castro, Cardona, Gorinsky,
// Francois — CoNEXT 2014): the ping-based detector of remote peering at
// IXPs, the transit-traffic offload analysis, and the economic viability
// model, together with the synthetic substrate (packet-level layer-2/3
// simulator, AS-level economy, looking-glass measurement apparatus,
// NetFlow-style traffic generator) that replaces the paper's live-Internet
// and proprietary-data dependencies.
//
// The package is a facade over the internal implementation and is what the
// example programs and command-line tools consume. A typical session:
//
//	w, _ := remotepeering.GenerateWorld(remotepeering.WorldConfig{Seed: 1})
//	spread, _ := remotepeering.RunSpreadStudy(w, remotepeering.SpreadOptions{Seed: 2})
//	fmt.Println(spread.Report.Table1())
//
//	ds, _ := remotepeering.CollectTraffic(w, remotepeering.TrafficConfig{Seed: 3})
//	study, _ := remotepeering.NewOffloadStudy(w, ds)
//	steps := study.Greedy(remotepeering.GroupAll, 0)
//
//	fit, _ := remotepeering.FitDecay(remainingFractions)
//	params := remotepeering.DefaultEconParams(fit.B)
//	fmt.Println(params.RemoteViable())
package remotepeering

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"time"

	"remotepeering/internal/asindex"
	"remotepeering/internal/catalog"
	"remotepeering/internal/core"
	"remotepeering/internal/econ"
	"remotepeering/internal/fault"
	"remotepeering/internal/fleet"
	"remotepeering/internal/ixpsim"
	"remotepeering/internal/journal"
	"remotepeering/internal/lg"
	"remotepeering/internal/netflow"
	"remotepeering/internal/netsim"
	"remotepeering/internal/offload"
	"remotepeering/internal/registry"
	"remotepeering/internal/scenario"
	"remotepeering/internal/serve"
	"remotepeering/internal/snapshot"
	"remotepeering/internal/spread"
	"remotepeering/internal/stats"
	"remotepeering/internal/tick"
	"remotepeering/internal/worldgen"
)

// Re-exported types. The aliases keep the public API surface in one place
// while the implementation lives in focused internal packages.
type (
	// World is the generated synthetic universe: the AS-level economy,
	// the 65 IXPs with memberships and ground-truth remote flags, and the
	// probe-target interfaces of the 22 studied IXPs.
	World = worldgen.World
	// WorldConfig parameterises world generation.
	WorldConfig = worldgen.Config

	// DetectorConfig holds the Section 3.1 methodology parameters
	// (remoteness threshold, filter windows, accepted TTLs).
	DetectorConfig = core.Config
	// DetectorReport is the detector output with per-figure analyses.
	DetectorReport = core.Report
	// Filter identifies one of the six data-hygiene filters.
	Filter = core.Filter
	// Validation scores detector verdicts against simulator ground truth.
	Validation = core.Validation

	// CampaignConfig controls the looking-glass probing regime.
	CampaignConfig = lg.Config
	// Observation is a single ping outcome seen from an LG server.
	Observation = lg.Observation

	// TrafficConfig parameterises the NetFlow-style collection.
	TrafficConfig = netflow.Config
	// TrafficDataset is the collected month of border traffic.
	TrafficDataset = netflow.Dataset

	// OffloadStudy is the prepared Section 4 analysis.
	OffloadStudy = offload.Study
	// PeerGroup selects one of the paper's four peer groups.
	PeerGroup = offload.PeerGroup
	// GreedyStep is one step of the Figure 9 expansion.
	GreedyStep = offload.GreedyStep
	// InterfaceStep is one step of the Figure 10 reachable-interfaces
	// expansion.
	InterfaceStep = offload.InterfaceStep
	// IXPPotential is one IXP's standalone offload potential (Figure 7).
	IXPPotential = offload.IXPPotential

	// ASNIndex maps every ASN of a generated world to a contiguous dense
	// id (World.Index carries the instance built at generation time).
	ASNIndex = asindex.Index
	// ASNBitSet is an allocation-free set over an ASNIndex's ids — the
	// currency of the bitset-valued fast paths (OffloadStudy.CoveredSet,
	// TrafficDataset.SeriesTotalSet). The map-valued signatures
	// (OffloadStudy.Covered, TrafficDataset.SeriesTotal) remain available
	// as thin adapters over the same engine, so existing callers keep
	// working unmodified.
	ASNBitSet = asindex.BitSet

	// EconParams holds the Section 5 model parameters.
	EconParams = econ.Params
)

// Detector filters, in the paper's application order.
const (
	FilterNone          = core.FilterNone
	FilterSampleSize    = core.FilterSampleSize
	FilterTTLSwitch     = core.FilterTTLSwitch
	FilterTTLMatch      = core.FilterTTLMatch
	FilterRTTConsistent = core.FilterRTTConsistent
	FilterLGConsistent  = core.FilterLGConsistent
	FilterASNChange     = core.FilterASNChange
)

// Peer groups 1-4 (Section 4.2).
const (
	GroupOpen               = offload.GroupOpen
	GroupOpenTop10Selective = offload.GroupOpenTop10Selective
	GroupOpenSelective      = offload.GroupOpenSelective
	GroupAll                = offload.GroupAll
)

// PeerGroups lists the four peer groups from narrowest to broadest.
var PeerGroups = offload.Groups

// GenerateWorld builds the deterministic synthetic world.
func GenerateWorld(cfg WorldConfig) (*World, error) {
	return worldgen.Generate(cfg)
}

// SpreadOptions controls RunSpreadStudy: the measurement seed, the studied
// IXP subset, the worker count, and the campaign/detector overrides.
type SpreadOptions = spread.Options

// SpreadResult bundles the outcome of a Section 3 measurement campaign:
// the detector report, the raw observations (for Reanalyze ablations), and
// the exhaustive ground-truth validation.
type SpreadResult = spread.Result

// AnalyzeObservations runs the detector directly over a set of raw
// observations — useful for vantage-point ablations (e.g. PCH-only).
func AnalyzeObservations(obs []Observation, reg *Registry, campaign time.Duration, cfg DetectorConfig) (*DetectorReport, error) {
	return core.Analyze(obs, reg, campaign, cfg)
}

// RunSpreadStudy reproduces Section 3: it builds the simulated IXPs,
// schedules and runs the four-month looking-glass campaign, derives the
// public registry view, and runs the detector. The implementation lives in
// internal/spread, where the scenario engine re-runs it per what-if cell.
func RunSpreadStudy(w *World, opts SpreadOptions) (*SpreadResult, error) {
	return spread.Run(w, opts)
}

// Registry is the public-data view (the PeeringDB/PCH/IXP-website
// analogue) that the detector identifies interface owners through.
type Registry = registry.Registry

// RegistryFromWorld derives the published registry view — including its
// calibrated imperfections — from the world's ground truth.
func RegistryFromWorld(w *World) *Registry {
	return registry.FromWorld(w)
}

// CollectTraffic reproduces the Section 4.1 dataset: a month of 5-minute
// border-traffic records with AS paths.
func CollectTraffic(w *World, cfg TrafficConfig) (*TrafficDataset, error) {
	return netflow.Collect(w, cfg)
}

// OffloadOptions tunes the Section 4 analysis machinery.
type OffloadOptions = offload.Options

// NewOffloadStudy prepares the Section 4 offload analysis over a world and
// its traffic dataset, using one worker per CPU. Results are identical for
// every worker count.
func NewOffloadStudy(w *World, ds *TrafficDataset) (*OffloadStudy, error) {
	return offload.NewStudy(w, ds)
}

// NewOffloadStudyOptions is NewOffloadStudy with an explicit worker count.
func NewOffloadStudyOptions(w *World, ds *TrafficDataset, opts OffloadOptions) (*OffloadStudy, error) {
	return offload.NewStudyOptions(w, ds, opts)
}

// DecayFit is the result of fitting remaining-transit curves to e^{-b·k}.
type DecayFit = stats.ExpFit

// FitDecay fits the empirical remaining-transit-fraction curve (indexed by
// number of reached IXPs, starting at 1) to the model t = e^{-b·k},
// returning the paper's parameter b — the bridge from Section 4's
// measurements to Section 5's model.
func FitDecay(remainingFractions []float64) (DecayFit, error) {
	return econ.FitB(remainingFractions)
}

// DefaultEconParams returns the reference Section 5 parameterisation for a
// given decay rate b (prices satisfying inequalities 7 and 8).
func DefaultEconParams(b float64) EconParams {
	return econ.DefaultParams(b)
}

// FitDecayFromGreedy fits the model's decay parameter b from a greedy
// Figure 9 curve. Because a fixed share of the transit traffic is not
// offloadable at any IXP (no member's cone covers it), the fit isolates
// the decaying component: (remaining − floor)/(total − floor), with the
// floor just under the curve's asymptote. totalBps is the full
// transit-provider traffic (in + out).
func FitDecayFromGreedy(steps []GreedyStep, totalBps float64) (DecayFit, error) {
	remaining := make([]float64, len(steps))
	for i, s := range steps {
		remaining[i] = s.Remaining()
	}
	return econ.FitBFromRemaining(remaining, totalBps)
}

// Scenario-engine re-exports: the typed what-if perturbation algebra over
// a generated world and the grid campaign runner (internal/scenario).
type (
	// Scenario is one named what-if: perturbation ops applied in order
	// to a fresh deterministic clone of the world.
	Scenario = scenario.Scenario
	// ScenarioOp is one serializable perturbation (a closed set:
	// IXPOutage, LatencyShift, MemberChurn, TrafficScale, DiurnalShift,
	// PortPrice, RemotePrice).
	ScenarioOp = scenario.Op
	// ScenarioGrid is a scenario×seed campaign matrix.
	ScenarioGrid = scenario.Grid
	// ScenarioOptions tunes a grid run (seeds, workers, campaign and
	// traffic overrides, coverage depth, base prices).
	ScenarioOptions = scenario.Options
	// ScenarioMetrics are one cell's headline numbers.
	ScenarioMetrics = scenario.Metrics
	// ScenarioCell is one evaluated grid cell.
	ScenarioCell = scenario.CellResult
	// ScenarioDelta is a cell's movement against the baseline.
	ScenarioDelta = scenario.Delta
	// ScenarioReport is a grid run's outcome with stable text/CSV
	// rendering.
	ScenarioReport = scenario.Report

	// IXPOutage takes an exchange dark.
	IXPOutage = scenario.IXPOutage
	// LatencyShift moves remote pseudowire delays per distance band.
	LatencyShift = scenario.LatencyShift
	// MemberChurn joins/removes members at one IXP.
	MemberChurn = scenario.MemberChurn
	// TrafficScale scales the NREN's transit-traffic level.
	TrafficScale = scenario.TrafficScale
	// DiurnalShift rotates the diurnal/weekly traffic profile.
	DiurnalShift = scenario.DiurnalShift
	// PortPrice scales the per-IXP costs g and h of the Section 5 model.
	PortPrice = scenario.PortPrice
	// RemotePrice scales the remote-peering prices h and v.
	RemotePrice = scenario.RemotePrice
)

// LatencyShift distance bands.
const (
	BandAll              = scenario.BandAll
	BandIntercity        = scenario.BandIntercity
	BandIntercountry     = scenario.BandIntercountry
	BandIntercontinental = scenario.BandIntercontinental
)

// ScenarioStageMask marks the pipeline stages a scenario op invalidates;
// the grid runner re-runs exactly the dirty stages of each cell and
// reuses the baseline's artifacts for the clean ones (byte-identically —
// set ScenarioOptions.NoReuse to force full reruns and see for yourself).
type ScenarioStageMask = scenario.StageMask

// Scenario pipeline stages.
const (
	ScenarioStageWorld   = scenario.StageWorld
	ScenarioStageSpread  = scenario.StageSpread
	ScenarioStageTraffic = scenario.StageTraffic
	ScenarioStageOffload = scenario.StageOffload
	ScenarioStageEcon    = scenario.StageEcon
	ScenarioStageAll     = scenario.StageAll
)

// ScenarioOpStages reports the dirty-stage mask of an op, downstream
// closure included — e.g. a TrafficScale dirties traffic, offload, and
// econ, while a PortPrice cell skips straight to the economic verdict.
func ScenarioOpStages(op ScenarioOp) ScenarioStageMask {
	return scenario.OpStages(op)
}

// RunScenarios evaluates a what-if grid over the world: every cell clones
// the world, applies its scenario's ops, re-runs the full pipeline (spread
// study, traffic collection, offload analysis, economic model), and is
// diffed against the runner's own unperturbed baseline cell. Cells fan out
// across Workers with the repo-wide invariant: the report is byte-identical
// for every worker count.
func RunScenarios(w *World, grid ScenarioGrid, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.Run(w, grid, opts)
}

// ParseScenarioGrid parses the textual grid form used by cmd/rpwhatif:
// ';'-separated scenarios, each "name=op,op,..." with ops like
// "outage:AMS-IX", "latency:city:-3", "churn:LINX:40:10", "traffic:1.5",
// "diurnal:6", "portprice:0.5", "remoteprice:0.8".
func ParseScenarioGrid(spec string) (ScenarioGrid, error) {
	return scenario.ParseGrid(spec)
}

// ParseScenarioOp parses one op in the same textual form.
func ParseScenarioOp(s string) (ScenarioOp, error) {
	return scenario.ParseOp(s)
}

// CloneWorld returns a deep copy of the world sharing no mutable state
// with the original — the copy-on-write substrate the scenario engine
// perturbs. Callers experimenting with manual world surgery get the same
// guarantee: analyses over the clone never write through to the parent.
func CloneWorld(w *World) *World {
	return w.Clone()
}

// Snapshot-store and query-service re-exports: persistent worlds/datasets
// (internal/snapshot) and the long-lived concurrent what-if API
// (internal/serve).
type (
	// Snapshot bundles the persistable artifacts: the world, and
	// optionally the traffic dataset (plus its synthesised all-transit
	// series), the measurement campaign, and the customer-cone tables.
	// Reports computed from a loaded snapshot are byte-identical to
	// reports computed from the live objects.
	Snapshot = snapshot.Snapshot
	// ConeCache shares customer-cone tables between offload studies (and
	// scenario grid runs) over the same immutable AS graph.
	ConeCache = offload.ConeCache
	// ServeConfig parameterises the query service: the snapshot (or
	// catalog), the in-flight evaluation bound, admission and deadline
	// policy, the result-cache budget, and the per-evaluation worker
	// bound.
	ServeConfig = serve.Config
	// Server is the /v1 query service over one immutable snapshot or a
	// catalog of them.
	Server = serve.Server
	// Catalog is a content-addressed store of snapshot files with a
	// bounded set of resident, attached worlds: attach-on-demand,
	// single-flight, refcounted against eviction, LRU under a byte
	// budget, quarantining snapshots that fail validation.
	Catalog = catalog.Catalog
	// CatalogOptions parameterises a Catalog: the resident budget, the
	// attach retry policy, and an optional fault plane.
	CatalogOptions = catalog.Options
	// CatalogWorld is one catalogued world's public state — digest,
	// path, size, health, outstanding leases.
	CatalogWorld = catalog.WorldInfo
	// WorldLease is a refcounted pin on a resident world: the snapshot
	// stays mapped until Release.
	WorldLease = catalog.Lease
	// FaultPlane is the injectable failure plane the serve tier threads
	// through attaches, evaluations, and caches. A nil plane is the
	// production plane: every injection site costs one nil comparison.
	FaultPlane = fault.Plane
	// FaultConfig seeds a FaultPlane with per-class injection rates.
	FaultConfig = fault.Config
)

// Typed snapshot integrity errors: a wrong file (ErrSnapshotBadMagic), a
// future format (ErrSnapshotVersion), a short file (ErrSnapshotTruncated),
// and a damaged one (ErrSnapshotCorrupt). LoadSnapshot never panics and
// never returns a silently-wrong world.
var (
	ErrSnapshotBadMagic  = snapshot.ErrBadMagic
	ErrSnapshotVersion   = snapshot.ErrVersion
	ErrSnapshotTruncated = snapshot.ErrTruncated
	ErrSnapshotCorrupt   = snapshot.ErrCorrupt
)

// NewConeCache returns an empty shareable customer-cone cache.
func NewConeCache() *ConeCache { return offload.NewConeCache() }

// SaveSnapshot writes the snapshot to path atomically and stamps
// s.Digest with the file's SHA-256 content address.
func SaveSnapshot(path string, s *Snapshot) error {
	return snapshot.SaveFile(path, s)
}

// LoadSnapshot reads and rehydrates a snapshot. Every artifact answers
// queries byte-identically to the live objects it was saved from.
func LoadSnapshot(path string) (*Snapshot, error) {
	return snapshot.LoadFile(path)
}

// WriteSnapshot is SaveSnapshot over an arbitrary writer (pipes, network
// transports, in-memory buffers).
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	return snapshot.Save(w, s)
}

// ReadSnapshot is LoadSnapshot over an arbitrary reader.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	return snapshot.Load(r)
}

// AttachedSnapshot is a v2 flat snapshot mapped into memory: attach costs
// microseconds regardless of file size, and the world materializes lazily
// on the first Snapshot() call, with the hot arrays viewed in place
// rather than copied. Close only after the last use of the materialized
// snapshot — its series and cone tables alias the mapping.
type AttachedSnapshot = snapshot.Attached

// SaveFlatSnapshot writes the snapshot in the v2 flat (mmap-able) format
// atomically and returns its SHA-256 content digest. The v1 format
// (SaveSnapshot) remains the canonical writer form; the flat file is the
// serve-tier attach artifact.
func SaveFlatSnapshot(path string, s *Snapshot) (digest string, err error) {
	return snapshot.SaveFlatFile(path, s)
}

// AttachSnapshot maps the v2 flat snapshot at path, validating only the
// header and section directory.
func AttachSnapshot(path string) (*AttachedSnapshot, error) {
	return snapshot.Attach(path)
}

// SnapshotIsFlat reports whether the file at path is a v2 flat snapshot
// (as opposed to a v1 varint snapshot or something else entirely).
func SnapshotIsFlat(path string) (bool, error) {
	return snapshot.SniffFlat(path)
}

// OpenSnapshot reads a snapshot in whichever format the file carries: v1
// files are fully loaded, v2 flat files are attached and materialized
// (their mapping stays live for the snapshot's lifetime). The digests of
// the two formats differ — they address different byte images — but the
// rehydrated artifacts answer queries identically.
func OpenSnapshot(path string) (*Snapshot, error) {
	return snapshot.OpenFile(path)
}

// Typed catalog failures callers route on: unknown or ambiguous world
// keys, a quarantined (validation-failing) world, and admission pressure
// (every resident world pinned by a lease).
var (
	ErrUnknownWorld     = catalog.ErrUnknownWorld
	ErrAmbiguousWorld   = catalog.ErrAmbiguous
	ErrWorldQuarantined = catalog.ErrQuarantined
	ErrNoWorldSlot      = catalog.ErrNoSlot
)

// OpenCatalog scans dir for snapshot files (either format) and catalogs
// them by content digest; non-snapshot files are skipped. Worlds attach
// on demand when leased (Catalog.Acquire) and evict LRU under
// opts.ResidentBytes.
func OpenCatalog(dir string, opts CatalogOptions) (*Catalog, error) {
	return catalog.Open(dir, opts)
}

// NewCatalog builds an empty catalog; register files with Catalog.Add.
func NewCatalog(opts CatalogOptions) *Catalog {
	return catalog.New(opts)
}

// NewFaultPlane builds a seeded fault plane for chaos drills. The
// contract: a plane may delay, fail, or crash operations, but completed
// work is byte-identical to a fault-free run.
func NewFaultPlane(cfg FaultConfig) *FaultPlane {
	return fault.New(cfg)
}

// ParseFaultPlane builds a fault plane from the textual -chaos form,
// e.g. "seed=42,slow=0.5,fail=0.3,corrupt=0.05,panic=0.2,cachefail=0.2,delay=20ms".
func ParseFaultPlane(spec string) (*FaultPlane, error) {
	return fault.Parse(spec)
}

// NewServer builds the query service over a loaded snapshot or a catalog
// without binding a listener — the embedding entry point (tests mount
// Server.Handler on httptest, cmd/rpserve on a real listener).
func NewServer(cfg ServeConfig) (*Server, error) {
	return serve.New(cfg)
}

// Serve runs the query service on addr until ctx is cancelled, then
// shuts down gracefully (in-flight requests get 10 seconds to drain).
func Serve(ctx context.Context, addr string, cfg ServeConfig) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	hs := serve.NewHTTPServer(addr, srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}

// RunScenariosCtx is RunScenarios with cooperative cancellation: once ctx
// is done, no new grid cell or pipeline stage starts and the call returns
// ctx.Err() — how the query service stops abandoned what-ifs.
func RunScenariosCtx(ctx context.Context, w *World, grid ScenarioGrid, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.RunCtx(ctx, w, grid, opts)
}

// Living-world re-exports: the tick engine that evolves a world through
// discrete time steps (internal/tick) and the append-only event journal
// with checkpointed deterministic replay that makes a timeline durable
// (internal/journal).
type (
	// TickConfig parameterises an evolution: the event regime (churn,
	// drift, price walks, outages), the checkpoint cadence, and the
	// per-tick pipeline options.
	TickConfig = tick.Config
	// TickEngine is one evolving world: it advances through discrete
	// time steps, re-running only the pipeline stages each tick's events
	// invalidate. The world at tick N is byte-identical across live
	// runs, replays, and worker counts.
	TickEngine = tick.Engine
	// TickResult is one committed tick's outcome: its events, dirty
	// stages, and post-tick metrics.
	TickResult = tick.Result
	// TickNewspaper is the digest view of a recent window of ticks.
	TickNewspaper = tick.Newspaper
	// TickState is the snapshot section that places a saved world on its
	// timeline: the tick, the evolution seed, and the evolved regime.
	TickState = snapshot.TickState
	// JournalRecord is one committed tick's durable form: its events and
	// the RNG stream key its application drew from.
	JournalRecord = journal.Record
	// JournalCheckpoint marks a flat-snapshot checkpoint on a timeline.
	JournalCheckpoint = journal.Checkpoint
	// JournalContents is a journal file decoded in full: header, tick
	// records, and checkpoint markers.
	JournalContents = journal.Contents
	// JournalSyncPolicy names when the journal fsyncs — the durability
	// guarantee of the -fsync flag (commit | checkpoint | off).
	JournalSyncPolicy = journal.SyncPolicy
)

// Typed journal integrity errors, mirroring the snapshot family: a wrong
// file, a short one, and a damaged one. ReadJournal never panics.
var (
	ErrJournalBadMagic  = journal.ErrBadMagic
	ErrJournalTruncated = journal.ErrTruncated
	ErrJournalCorrupt   = journal.ErrCorrupt
)

// DefaultTickConfig returns the reference evolution regime.
func DefaultTickConfig() TickConfig { return tick.DefaultConfig() }

// ParseTickConfig parses the compact "key=value,..." evolution spec used
// by the tools' -tick flags, e.g. "seed=7,joins=3,leaves=2,outage=0.02".
func ParseTickConfig(spec string) (TickConfig, error) { return tick.ParseConfig(spec) }

// ParseJournalSyncPolicy parses the -fsync flag form: commit (every
// acked tick durable, the default), checkpoint (durable up to the last
// checkpoint), or off (page cache only).
func ParseJournalSyncPolicy(s string) (JournalSyncPolicy, error) { return journal.ParseSyncPolicy(s) }

// NewTickEngine builds an in-memory evolution over a genesis world (which
// is cloned, never mutated) and evaluates the tick-0 baseline.
func NewTickEngine(ctx context.Context, genesis *World, cfg TickConfig) (*TickEngine, error) {
	return tick.New(ctx, genesis, cfg)
}

// OpenTickEngine attaches an evolution to a directory: a fresh directory
// starts a new journalled timeline, an existing journal is recovered —
// torn tail truncated, newest valid checkpoint attached, tail replayed —
// to exactly the state an uninterrupted run would hold.
func OpenTickEngine(ctx context.Context, dir string, genesis *World, cfg TickConfig) (*TickEngine, error) {
	return tick.Open(ctx, dir, genesis, cfg)
}

type (
	// FleetRouter fronts a fleet of rpserve workers: health-gated
	// membership, rendezvous-hash routing with failover and hedging, and
	// byte-identical what-if grid fan-out.
	FleetRouter = fleet.Router
	// FleetConfig parameterises a FleetRouter.
	FleetConfig = fleet.Config
	// FleetState is a member's health (Up, Suspect, Down) as decided by
	// the router's heartbeat loop.
	FleetState = fleet.State
)

// NewFleetRouter builds a router over the configured peers; call Start
// on it to begin heartbeating and Handler for its HTTP surface.
func NewFleetRouter(cfg FleetConfig) (*FleetRouter, error) { return fleet.New(cfg) }

// ReadJournal decodes a journal file strictly, for inspection and for
// driving ReplayTicks by hand.
func ReadJournal(path string) (*JournalContents, error) { return journal.Read(path) }

// ReplayTicks rebuilds an engine by replaying recorded tick records over
// a genesis world. With evalEach, every tick runs the stage pipeline
// exactly as the live run did; without it, a single evaluation at the end
// rebuilds the artifacts. Both are byte-identical to the live run.
func ReplayTicks(ctx context.Context, genesis *World, cfg TickConfig, recs []JournalRecord, evalEach bool) (*TickEngine, error) {
	return tick.Replay(ctx, genesis, cfg, recs, evalEach)
}

// P95 returns the 95th-percentile rate of a traffic series — the
// transit-billing number of Section 2.1.
func P95(series []float64) (float64, error) {
	return netflow.P95(series)
}

// WriteObservationsCSV archives a campaign's raw observations in the CSV
// interchange format; ReadObservationsCSV restores them for re-analysis
// (the paper published its measurement data similarly).
func WriteObservationsCSV(w io.Writer, obs []Observation) error {
	return lg.WriteCSV(w, obs)
}

// ReadObservationsCSV parses observations written by WriteObservationsCSV.
func ReadObservationsCSV(r io.Reader) ([]Observation, error) {
	return lg.ReadCSV(r)
}

// ProbeComparison contrasts what layer-3 path discovery and delay
// measurement each reveal about one member interface — the paper's core
// argument (remote peering is invisible on layer 3) in data form.
type ProbeComparison struct {
	IP netip.Addr
	// HopCount is the traceroute hop count from the LG server (1 =
	// on-link; lost probes can inflate it with timed-out rows, exactly
	// as real traceroute prints "*" lines).
	HopCount int
	// SawRouter reports whether any intermediate layer-3 device answered
	// along the path. For a genuine layer-2 pseudowire this is always
	// false — the paper's invisibility argument — while a misdirected
	// registry entry (the TTL-match hazard) exposes its proxy router
	// here.
	SawRouter bool
	// MinRTT is the minimum ping RTT over a short probe burst.
	MinRTT time.Duration
	// TrueRemote is the simulator's ground truth.
	TrueRemote bool
}

// CompareLayer3Visibility builds one studied IXP, then runs both
// traceroute and a burst of pings from its PCH looking glass to every
// registry-listed member interface. In the result, remote and direct
// members are indistinguishable by hop count but separate cleanly by
// minimum RTT — why the paper's methodology is delay-based.
func CompareLayer3Visibility(w *World, ixpIndex int, seed int64) ([]ProbeComparison, error) {
	if w == nil {
		return nil, fmt.Errorf("remotepeering: nil world")
	}
	var e netsim.Engine
	src := stats.NewSource(seed)
	sim, err := ixpsim.Build(&e, w, ixpIndex, 24*time.Hour, src.Split("sim"))
	if err != nil {
		return nil, err
	}
	if len(sim.LGs) == 0 {
		return nil, fmt.Errorf("remotepeering: IXP %d has no LG server", ixpIndex)
	}
	lgNode := sim.LGs[0].Node

	results := make([]ProbeComparison, len(sim.Targets))
	for i, target := range sim.Targets {
		i, target := i, target
		results[i] = ProbeComparison{IP: target, HopCount: -1, TrueRemote: sim.IsRemote(target)}
		at := time.Duration(i) * time.Minute
		e.Schedule(at, func() {
			lgNode.Traceroute(target, 8, 5*time.Second, func(r netsim.TracerouteResult) {
				results[i].HopCount = r.HopCount()
				for _, h := range r.Hops {
					if !h.TimedOut && !h.Reached {
						results[i].SawRouter = true
					}
				}
			})
		})
		// A burst of three pings; keep the minimum.
		for p := 0; p < 3; p++ {
			p := p
			e.Schedule(at+30*time.Second+time.Duration(p)*time.Second, func() {
				lgNode.Ping(target, 5*time.Second, func(r netsim.PingResult) {
					if r.TimedOut {
						return
					}
					if results[i].MinRTT == 0 || r.RTT < results[i].MinRTT {
						results[i].MinRTT = r.RTT
					}
				})
			})
		}
	}
	if err := e.Run(); err != nil {
		return nil, err
	}
	return results, nil
}
