package remotepeering

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark measures the analysis that produces one
// artifact; the expensive fixtures (paper-scale world, four-month campaign,
// month of traffic) are built once and shared. Run with:
//
//	go test -bench=. -benchmem
//
// The printed metrics (b.ReportMetric) carry the headline numbers so a
// bench run doubles as a reproduction log; EXPERIMENTS.md records the
// paper-vs-measured comparison.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// fixtures are shared across benchmarks and built on first use.
var (
	fixOnce    sync.Once
	fixWorld   *World
	fixSpread  *SpreadResult
	fixTraffic *TrafficDataset
	fixStudy   *OffloadStudy
	fixErr     error
)

func fixtures(b *testing.B) (*World, *SpreadResult, *TrafficDataset, *OffloadStudy) {
	b.Helper()
	// Each stage wraps its error with the pipeline stage name: fixOnce
	// caches the first failure for every subsequent benchmark, so a bare
	// error would otherwise surface dozens of times with no hint of which
	// fixture broke.
	fixOnce.Do(func() {
		var err error
		if fixWorld, err = GenerateWorld(WorldConfig{Seed: 1}); err != nil {
			fixErr = fmt.Errorf("world fixture (GenerateWorld): %w", err)
			return
		}
		if fixSpread, err = RunSpreadStudy(fixWorld, SpreadOptions{Seed: 2}); err != nil {
			fixErr = fmt.Errorf("spread-campaign fixture (RunSpreadStudy): %w", err)
			return
		}
		if fixTraffic, err = CollectTraffic(fixWorld, TrafficConfig{Seed: 3}); err != nil {
			fixErr = fmt.Errorf("traffic fixture (CollectTraffic): %w", err)
			return
		}
		if fixStudy, err = NewOffloadStudy(fixWorld, fixTraffic); err != nil {
			fixErr = fmt.Errorf("offload fixture (NewOffloadStudy): %w", err)
		}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixWorld, fixSpread, fixTraffic, fixStudy
}

func allIXPIndices(w *World) []int {
	out := make([]int, len(w.IXPs))
	for i := range out {
		out[i] = i
	}
	return out
}

// BenchmarkTable1 regenerates Table 1: the per-IXP probed/analyzed
// interface counts after the six filters.
func BenchmarkTable1(b *testing.B) {
	w, spread, _, _ := fixtures(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rep, err := spread.Reanalyze(w, DetectorConfig{})
		if err != nil {
			b.Fatal(err)
		}
		rows = len(rep.Table1())
	}
	b.ReportMetric(float64(rows), "IXPs")
	b.ReportMetric(float64(len(spread.Report.Analyzed())), "analyzed-ifaces")
}

// BenchmarkFigure2 regenerates the minimum-RTT CDF.
func BenchmarkFigure2(b *testing.B) {
	_, spread, _, _ := fixtures(b)
	b.ResetTimer()
	var median float64
	for i := 0; i < b.N; i++ {
		cdf, err := spread.Report.Figure2CDF()
		if err != nil {
			b.Fatal(err)
		}
		median = cdf.Quantile(0.5)
	}
	b.ReportMetric(median, "median-ms")
}

// BenchmarkFigure3 regenerates the per-IXP classification into the four
// minimum-RTT ranges.
func BenchmarkFigure3(b *testing.B) {
	_, spread, _, _ := fixtures(b)
	b.ResetTimer()
	var withRemote int
	for i := 0; i < b.N; i++ {
		_ = spread.Report.Figure3()
		withRemote, _ = spread.Report.IXPsWithRemotePeering()
	}
	b.ReportMetric(float64(withRemote), "IXPs-with-remote")
	b.ReportMetric(float64(spread.Report.IXPsWithIntercontinental()), "IXPs-intercontinental")
}

// BenchmarkFigure4a regenerates the IXP-count distributions of identified
// and remotely peering networks.
func BenchmarkFigure4a(b *testing.B) {
	_, spread, _, _ := fixtures(b)
	b.ResetTimer()
	var nets, remote int
	for i := 0; i < b.N; i++ {
		all, rem := spread.Report.Figure4a()
		nets, remote = 0, 0
		for _, n := range all {
			nets += n
		}
		for _, n := range rem {
			remote += n
		}
	}
	b.ReportMetric(float64(nets), "identified-networks")
	b.ReportMetric(float64(remote), "remote-networks")
}

// BenchmarkFigure4b regenerates the interface-class fractions of remotely
// peering networks by IXP count.
func BenchmarkFigure4b(b *testing.B) {
	_, spread, _, _ := fixtures(b)
	b.ResetTimer()
	var buckets int
	for i := 0; i < b.N; i++ {
		buckets = len(spread.Report.Figure4b())
	}
	b.ReportMetric(float64(buckets), "ixp-count-buckets")
}

// BenchmarkFigure5a regenerates the rank-ordered traffic contributions.
func BenchmarkFigure5a(b *testing.B) {
	w, _, ds, study := fixtures(b)
	_ = w
	b.ResetTimer()
	var top float64
	for i := 0; i < b.N; i++ {
		entries := ds.TransitEntries()
		top = entries[0].AvgInBps
		_ = study
	}
	b.ReportMetric(top/1e6, "top-contributor-Mbps")
	b.ReportMetric(float64(len(ds.TransitEntries())), "transit-networks")
}

// BenchmarkFigure5b regenerates one week of the transit and offload time
// series (the full month is exercised by cmd/rpoffload). Every iteration
// queries a fresh dataset so the number stays the cold synthesis cost at
// any -benchtime, comparable across the BENCH_<n>.json trajectory — the
// per-dataset memo the repeated-query regime hits is measured by
// BenchmarkSeriesTotalCached instead.
func BenchmarkFigure5b(b *testing.B) {
	w, _, _, study := fixtures(b)
	covered := study.Covered(allIXPIndices(w), GroupAll)
	b.ResetTimer()
	var peakIn float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ds, err := CollectTraffic(w, TrafficConfig{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		b.StartTimer()
		in, _ := ds.SeriesTotal(covered)
		peakIn = 0
		for _, v := range in[:2016] {
			if v > peakIn {
				peakIn = v
			}
		}
	}
	b.ReportMetric(peakIn/1e9, "offload-peak-Gbps")
}

// BenchmarkFigure6 regenerates the top-30 offload contributors with their
// origin/destination vs transient decomposition.
func BenchmarkFigure6(b *testing.B) {
	_, _, _, study := fixtures(b)
	b.ResetTimer()
	var originDominates int
	for i := 0; i < b.N; i++ {
		top := study.TopContributors(30)
		originDominates = 0
		for _, c := range top {
			if c.OriginInBps+c.DestOutBps > c.TransientInBps+c.TransientOutBps {
				originDominates++
			}
		}
	}
	b.ReportMetric(float64(originDominates), "origin-dominant-of-30")
}

// BenchmarkFigure7 regenerates the single-IXP offload potentials across
// the four peer groups.
func BenchmarkFigure7(b *testing.B) {
	_, _, _, study := fixtures(b)
	b.ResetTimer()
	var topGbps float64
	for i := 0; i < b.N; i++ {
		for _, g := range PeerGroups {
			pots := study.SingleIXP(g)
			if g == GroupAll {
				topGbps = pots[0].Total() / 1e9
			}
		}
	}
	b.ReportMetric(topGbps, "best-IXP-Gbps")
}

// BenchmarkFigure8 regenerates the second-IXP residuals among AMS-IX,
// LINX, DE-CIX, and the Terremark-analogue.
func BenchmarkFigure8(b *testing.B) {
	w, _, _, study := fixtures(b)
	names := []string{"AMS-IX", "LINX", "DE-CIX", "Terremark"}
	idx := make([]int, len(names))
	for i, n := range names {
		_, j, err := w.IXPByAcronym(n)
		if err != nil {
			b.Fatal(err)
		}
		idx[i] = j
	}
	b.ResetTimer()
	var amsAfterLINX float64
	for i := 0; i < b.N; i++ {
		for a := range idx {
			for c := range idx {
				if a == c {
					continue
				}
				r := study.Residual(idx[a], idx[c], GroupAll)
				if names[a] == "LINX" && names[c] == "AMS-IX" {
					amsAfterLINX = r / 1e9
				}
			}
		}
	}
	b.ReportMetric(amsAfterLINX, "AMS-after-LINX-Gbps")
}

// BenchmarkFigure9 regenerates the greedy remaining-transit curves for all
// four peer groups.
func BenchmarkFigure9(b *testing.B) {
	_, _, ds, study := fixtures(b)
	in, out := ds.TransitTotals()
	b.ResetTimer()
	var g4Final float64
	for i := 0; i < b.N; i++ {
		for _, g := range PeerGroups {
			steps := study.Greedy(g, 0)
			if g == GroupAll {
				g4Final = 100 * steps[len(steps)-1].Remaining() / (in + out)
			}
		}
	}
	b.ReportMetric(g4Final, "group4-remaining-%")
}

// BenchmarkFigure10 regenerates the reachable-interfaces greedy curves.
func BenchmarkFigure10(b *testing.B) {
	_, _, _, study := fixtures(b)
	b.ResetTimer()
	var after1 float64
	for i := 0; i < b.N; i++ {
		steps := study.GreedyInterfaces(GroupAll, 30)
		after1 = steps[0].Remaining / 1e9
	}
	b.ReportMetric(study.TotalInterfaces()/1e9, "total-B")
	b.ReportMetric(after1, "after-first-IXP-B")
}

// BenchmarkEconModel fits b from the Figure 9 curve and evaluates
// equations 11, 13 and 14.
func BenchmarkEconModel(b *testing.B) {
	_, _, ds, study := fixtures(b)
	in, out := ds.TransitTotals()
	steps := study.Greedy(GroupAll, 30)
	floor := steps[len(steps)-1].Remaining() * 0.98
	var remaining []float64
	for _, s := range steps {
		v := (s.Remaining() - floor) / (in + out - floor)
		if v > 0 {
			remaining = append(remaining, v)
		}
	}
	b.ResetTimer()
	var fittedB float64
	var viable bool
	for i := 0; i < b.N; i++ {
		fit, err := FitDecay(remaining)
		if err != nil {
			b.Fatal(err)
		}
		fittedB = fit.B
		p := DefaultEconParams(fit.B)
		viable = p.RemoteViable()
		_ = p.OptimalDirectN()
		_ = p.OptimalRemoteM()
	}
	b.ReportMetric(fittedB, "fitted-b")
	if viable {
		b.ReportMetric(1, "remote-viable")
	} else {
		b.ReportMetric(0, "remote-viable")
	}
}

// BenchmarkAblationThreshold sweeps the remoteness threshold (Section 3.1
// sets 10 ms after inspecting Figure 2) and reports the false-positive and
// false-negative counts at 5 ms — the design choice the high threshold
// guards against.
func BenchmarkAblationThreshold(b *testing.B) {
	w, spread, _, _ := fixtures(b)
	thresholds := []float64{5, 10, 15, 20}
	b.ResetTimer()
	var fpAt5, fnAt20 int
	for i := 0; i < b.N; i++ {
		for _, ms := range thresholds {
			rep, err := spread.Reanalyze(w, DetectorConfig{
				RemoteThreshold: durationMs(ms),
			})
			if err != nil {
				b.Fatal(err)
			}
			v := rep.Validate(spread.Truth)
			switch ms {
			case 5:
				fpAt5 = v.FalsePositives
			case 20:
				fnAt20 = v.FalseNegatives
			}
		}
	}
	b.ReportMetric(float64(fpAt5), "FP-at-5ms")
	b.ReportMetric(float64(fnAt20), "FN-at-20ms")
}

// BenchmarkAblationFilters disables each filter in turn and reports the
// precision drop without the TTL-match filter (which guards against
// misdirected probes and odd OSes).
func BenchmarkAblationFilters(b *testing.B) {
	w, spread, _, _ := fixtures(b)
	b.ResetTimer()
	var worstPrecision float64
	for i := 0; i < b.N; i++ {
		worstPrecision = 1
		for _, f := range []Filter{
			FilterSampleSize, FilterTTLSwitch, FilterTTLMatch,
			FilterRTTConsistent, FilterLGConsistent, FilterASNChange,
		} {
			rep, err := spread.Reanalyze(w, DetectorConfig{
				Disabled: map[Filter]bool{f: true},
			})
			if err != nil {
				b.Fatal(err)
			}
			if p := rep.Validate(spread.Truth).Precision(); p < worstPrecision {
				worstPrecision = p
			}
		}
	}
	b.ReportMetric(worstPrecision, "worst-precision-one-filter-off")
}

// BenchmarkAblationLG compares detection with PCH-only observations
// against the full dual-LG campaign (the LG-consistent filter needs both).
func BenchmarkAblationLG(b *testing.B) {
	w, spread, _, _ := fixtures(b)
	var pchOnly []Observation
	for _, o := range spread.Raw {
		if o.Family == "PCH" {
			pchOnly = append(pchOnly, o)
		}
	}
	reg := RegistryFromWorld(w)
	b.ResetTimer()
	var analyzedPCH int
	for i := 0; i < b.N; i++ {
		rep, err := AnalyzeObservations(pchOnly, reg, spread.Campaign.Duration, DetectorConfig{})
		if err != nil {
			b.Fatal(err)
		}
		analyzedPCH = len(rep.Analyzed())
	}
	b.ReportMetric(float64(analyzedPCH), "analyzed-PCH-only")
	b.ReportMetric(float64(len(spread.Report.Analyzed())), "analyzed-dual-LG")
}

// BenchmarkAblationSampleSize sweeps the per-LG reply floor (the paper
// chose 8 empirically). A floor above the RIPE NCC ceiling of 21 replies
// wipes out every target at the dual-LG IXPs — the constraint that pinned
// the paper's choice low.
func BenchmarkAblationSampleSize(b *testing.B) {
	w, spread, _, _ := fixtures(b)
	b.ResetTimer()
	var analyzedAt8, analyzedAt24 int
	for i := 0; i < b.N; i++ {
		for _, floor := range []int{4, 8, 24} {
			rep, err := spread.Reanalyze(w, DetectorConfig{MinRepliesPerLG: floor})
			if err != nil {
				b.Fatal(err)
			}
			switch floor {
			case 8:
				analyzedAt8 = len(rep.Analyzed())
			case 24:
				analyzedAt24 = len(rep.Analyzed())
			}
		}
	}
	b.ReportMetric(float64(analyzedAt8), "analyzed-at-floor-8")
	b.ReportMetric(float64(analyzedAt24), "analyzed-at-floor-24")
}

// benchWorkerCounts are the explicit pool sizes the parallel campaign
// benchmarks contrast. Explicit sub-benchmarks are used instead of leaning
// on `-cpu`/GOMAXPROCS because the testing framework reuses the discovery
// run's timing for the first -cpu entry, which would misattribute the
// serial baseline; the workers=N variants measure exactly what they claim
// regardless of the -cpu list. The determinism suite guarantees every
// variant produces byte-identical results.
var benchWorkerCounts = []int{1, 2, 4}

// BenchmarkSpreadStudy measures the full Section 3 campaign — the
// four-month looking-glass study across all 22 studied IXPs at paper
// scale — per worker count.
func BenchmarkSpreadStudy(b *testing.B) {
	w, _, _, _ := fixtures(b)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var obs int
			for i := 0; i < b.N; i++ {
				res, err := RunSpreadStudy(w, SpreadOptions{Seed: 2, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				obs = res.Observations
			}
			b.ReportMetric(float64(obs), "observations")
		})
	}
}

// BenchmarkCollectTraffic measures the Section 4.1 traffic pipeline at
// paper scale per worker count, split so the trajectory attributes time
// to the right stage: collect/ is dataset collection alone (RIB, paths,
// transient accounting), series/ is the month-long 5-minute series
// synthesis alone (the entry-major kernel, measured cold on a fresh
// dataset each iteration so the per-dataset cache cannot serve it).
func BenchmarkCollectTraffic(b *testing.B) {
	w, _, _, _ := fixtures(b)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("collect/workers=%d", workers), func(b *testing.B) {
			var transit int
			for i := 0; i < b.N; i++ {
				ds, err := CollectTraffic(w, TrafficConfig{Seed: 3, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				transit = len(ds.TransitEntries())
			}
			b.ReportMetric(float64(transit), "transit-networks")
		})
	}
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("series/workers=%d", workers), func(b *testing.B) {
			var p95 float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ds, err := CollectTraffic(w, TrafficConfig{Seed: 3, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				// Collect's garbage must not bill its GC to the timed
				// synthesis below.
				runtime.GC()
				b.StartTimer()
				in, _ := ds.SeriesTotal(nil)
				if p95, err = P95(in); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p95/1e9, "p95-in-Gbps")
		})
	}
}

// BenchmarkSeriesTotalCached measures the cached fast path of the series
// queries: the first SeriesTotalSet call per selection synthesises the
// month, every further identical query is served from the per-dataset
// memo as a copy. This is the regime the offload relief loop and
// repeated what-if queries actually run in.
func BenchmarkSeriesTotalCached(b *testing.B) {
	w, _, ds, study := fixtures(b)
	covered := study.CoveredSet(allIXPIndices(w), GroupAll)
	ds.SeriesTotalSet(covered) // warm the memo
	b.ResetTimer()
	var peak float64
	for i := 0; i < b.N; i++ {
		in, _ := ds.SeriesTotalSet(covered)
		peak = in[0]
	}
	_ = peak
	b.ReportMetric(float64(ds.Cfg.Intervals), "intervals")
}

// BenchmarkScenarioGrid measures the what-if engine end to end: a 4-cell
// grid (baseline + outage + latency shift + churn/traffic combo) at
// reduced scale, each cell cloning the world and re-running the full
// spread/traffic/offload/econ pipeline.
func BenchmarkScenarioGrid(b *testing.B) {
	w, err := GenerateWorld(WorldConfig{Seed: 5, LeafNetworks: 4000})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := ParseScenarioGrid(
		"dark=outage:AMS-IX;fast-pw=latency:city:-3;surge=churn:LINX:25:10,traffic:1.5")
	if err != nil {
		b.Fatal(err)
	}
	opts := ScenarioOptions{
		MeasureSeed:  2,
		TrafficSeed:  3,
		IXPs:         []int{0, 2, 7},
		Campaign:     CampaignConfig{Duration: 6 * 24 * time.Hour, PCHRounds: 3, RIPERounds: 3},
		Intervals:    288,
		CoverageIXPs: 3,
		GreedyIXPs:   12,
	}
	b.ResetTimer()
	var cells int
	var baselineOffload float64
	for i := 0; i < b.N; i++ {
		rep, err := RunScenarios(w, grid, opts)
		if err != nil {
			b.Fatal(err)
		}
		cells = len(rep.Cells)
		baselineOffload = 100 * rep.Baseline.OffloadedFrac
	}
	b.ReportMetric(float64(cells), "cells")
	b.ReportMetric(baselineOffload, "baseline-offload-%")
}

// BenchmarkScenarioGridReuse measures the stage-invalidation fast path:
// a grid whose scenarios dirty only the traffic and econ stages, so
// every cell after the baseline reuses the spread campaign (and the
// price-only cells everything but the closing formula). Contrast with
// BenchmarkScenarioGrid, whose ops force spread re-simulation.
func BenchmarkScenarioGridReuse(b *testing.B) {
	w, err := GenerateWorld(WorldConfig{Seed: 5, LeafNetworks: 4000})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := ParseScenarioGrid(
		"cheap-port=portprice:0.5;cheap-remote=remoteprice:0.5;surge=traffic:1.5;shift=diurnal:6")
	if err != nil {
		b.Fatal(err)
	}
	opts := ScenarioOptions{
		MeasureSeed:  2,
		TrafficSeed:  3,
		IXPs:         []int{0, 2, 7},
		Campaign:     CampaignConfig{Duration: 6 * 24 * time.Hour, PCHRounds: 3, RIPERounds: 3},
		Intervals:    288,
		CoverageIXPs: 3,
		GreedyIXPs:   12,
	}
	b.ResetTimer()
	var flips int
	for i := 0; i < b.N; i++ {
		rep, err := RunScenarios(w, grid, opts)
		if err != nil {
			b.Fatal(err)
		}
		flips = 0
		for _, c := range rep.Cells {
			if c.Diff(rep.Baseline).ViableFlipped {
				flips++
			}
		}
	}
	b.ReportMetric(float64(flips), "viable-flips")
}

// BenchmarkWorldGeneration measures paper-scale world construction.
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWorld(WorldConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignSingleIXP measures the full simulate-and-probe loop for
// one mid-size IXP.
func BenchmarkCampaignSingleIXP(b *testing.B) {
	w, _, _, _ := fixtures(b)
	_, idx, err := w.IXPByAcronym("France-IX")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSpreadStudy(w, SpreadOptions{Seed: int64(i + 10), IXPs: []int{idx}}); err != nil {
			b.Fatal(err)
		}
	}
}

func durationMs(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// BenchmarkSnapshotRoundTrip measures the snapshot codec over the
// paper-scale world and traffic dataset: one full Save (encode + CRC +
// digest) and Load (verify + decode + rehydrate derived tables) per
// iteration. The reported bytes metric is the file size — the cost of
// feeding rpserve one warm start.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	w, _, ds, _ := fixtures(b)
	var size int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, &Snapshot{World: w, Dataset: ds}); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
		loaded, err := ReadSnapshot(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if loaded.World.Graph.Len() != w.Graph.Len() {
			b.Fatal("loaded world lost networks")
		}
	}
	b.ReportMetric(float64(size), "snapshot_bytes")
}

// BenchmarkSnapshotAttach measures the v2 flat format's core claim: a
// paper-scale world+dataset attaches in microseconds — header and
// directory validation only, O(sections) not O(file) — where the v1 load
// above pays tens of milliseconds of decoding. Like
// BenchmarkServeWhatifCached, the acceptance bar is enforced in-bench
// (< 1 ms and < 1,000 allocations per attach); the one-time lazy
// materialization is timed separately and reported as a metric.
func BenchmarkSnapshotAttach(b *testing.B) {
	w, _, ds, _ := fixtures(b)
	ds.SeriesTotal(nil) // warm the series cache so the flat file carries the month
	path := filepath.Join(b.TempDir(), "bench.flat")
	if _, err := SaveFlatSnapshot(path, &Snapshot{World: w, Dataset: ds}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := AttachSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Sections()) < 4 { // world, asn.ids, dataset, series
			b.Fatal("attached file is missing sections")
		}
		if err := a.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	perOp := b.Elapsed() / time.Duration(b.N)
	if perOp >= time.Millisecond {
		b.Errorf("attach costs %v per op, want < 1ms", perOp)
	}
	allocs := testing.AllocsPerRun(10, func() {
		a, err := AttachSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		a.Close()
	})
	if allocs >= 1000 {
		b.Errorf("attach allocates %.0f objects, want < 1,000", allocs)
	}
	b.ReportMetric(allocs, "allocs/attach")

	// One lazy materialization — the cost the first query pays, reported
	// for the EXPERIMENTS trajectory but outside the attach bar. The
	// mapping stays open: the materialized snapshot aliases it.
	start := time.Now()
	a, err := AttachSnapshot(path)
	if err != nil {
		b.Fatal(err)
	}
	snap, err := a.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	if snap.World.Graph.Len() != w.Graph.Len() {
		b.Fatal("materialized world lost networks")
	}
	b.ReportMetric(time.Since(start).Seconds()*1e3, "materialize_ms")
}

// BenchmarkServeWhatifCached measures the warm path of the query service:
// an identical /v1/whatif query answered from the LRU result cache. The
// cold evaluation is timed once during setup and reported alongside, so
// the benchmark records the cache's speedup (the acceptance bar is ≥10×;
// in practice it is three to four orders of magnitude).
func BenchmarkServeWhatifCached(b *testing.B) {
	w, err := GenerateWorld(WorldConfig{Seed: 1, LeafNetworks: 3000})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, &Snapshot{World: w}); err != nil {
		b.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServeConfig{Snapshot: snap})
	if err != nil {
		b.Fatal(err)
	}
	handler := srv.Handler()
	const url = "/v1/whatif?scenarios=cheap%3Dremoteprice%3A0.5%3Bsurge%3Dtraffic%3A1.4&days=6&intervals=96&k=3&greedy=8"
	query := func() (string, int) {
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		res := rec.Result()
		body, _ := io.ReadAll(res.Body)
		if res.StatusCode != 200 {
			b.Fatalf("status %d: %s", res.StatusCode, body)
		}
		return res.Header.Get("X-Cache"), len(body)
	}

	coldStart := time.Now()
	if cache, _ := query(); cache != "miss" {
		b.Fatalf("first query X-Cache = %q, want miss", cache)
	}
	cold := time.Since(coldStart)

	warmStart := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cache, _ := query(); cache != "hit" {
			b.Fatalf("warm query X-Cache = %q, want hit", cache)
		}
	}
	b.StopTimer()
	warm := time.Since(warmStart) / time.Duration(b.N)
	speedup := float64(cold) / float64(warm)
	b.ReportMetric(float64(cold.Milliseconds()), "cold_ms")
	b.ReportMetric(speedup, "speedup_x")
	if speedup < 10 {
		b.Errorf("cached query only %.1f× faster than cold (%v vs %v) — acceptance bar is 10×", speedup, warm, cold)
	}
}

// BenchmarkCatalogAttachEvict measures the catalog's world-churn cost:
// with a resident budget of one world, every acquire of the *other*
// world is a full evict + attach + materialize cycle — the price a
// fleet pays each time a query lands on a cold world. The bar is loose
// (< 250 ms per cycle at 3,000 leaves) because the cycle includes the
// lazy materialization; the attach itself is the microsecond path
// BenchmarkSnapshotAttach pins. Lease hygiene is asserted in-bench: no
// refcount drift, every cycle evicts exactly one world.
func BenchmarkCatalogAttachEvict(b *testing.B) {
	dir := b.TempDir()
	digests := make([]string, 2)
	var budget int64
	for i, seed := range []int64{31, 32} {
		w, err := GenerateWorld(WorldConfig{Seed: seed, LeafNetworks: 3000})
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("w%d.flat", i+1))
		if digests[i], err = SaveFlatSnapshot(path, &Snapshot{World: w}); err != nil {
			b.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		if fi.Size() > budget {
			budget = fi.Size()
		}
	}
	cat, err := OpenCatalog(dir, CatalogOptions{ResidentBytes: budget})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := cat.Acquire(ctx, digests[i%2])
		if err != nil {
			b.Fatal(err)
		}
		if lease.Snapshot().World == nil {
			b.Fatal("leased world is nil")
		}
		lease.Release()
	}
	b.StopTimer()

	if refs := cat.PinnedRefs(); refs != 0 {
		b.Errorf("%d lease refs pinned after churn, want 0", refs)
	}
	if got, want := cat.Attaches(), int64(b.N); got != want {
		b.Errorf("%d attaches over %d alternating acquires, want one each", got, want)
	}
	perOp := b.Elapsed() / time.Duration(b.N)
	if perOp >= 250*time.Millisecond {
		b.Errorf("attach+evict cycle costs %v per op, want < 250ms", perOp)
	}
	b.ReportMetric(float64(cat.Evictions()), "evictions")
	if err := cat.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTickAdvance measures the living world's per-tick cost against
// the cold pipeline it replaces. The regime is churn-only — member
// arrivals and departures at one exchange per tick, no traffic or price
// drift — so each tick dirties only the spread/offload/econ stages of one
// simulation and splices the previous tick's artifacts for everything
// else. The cold cost (the tick-0 genesis evaluation: clone + full
// pipeline) is timed during setup and reported alongside; the acceptance
// bar, enforced in-bench, is that a churn-only tick costs less than half
// a cold run (in practice the ratio is far higher).
func BenchmarkTickAdvance(b *testing.B) {
	w, err := GenerateWorld(WorldConfig{Seed: 5, LeafNetworks: 3000})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultTickConfig()
	cfg.Seed = 7
	cfg.TrafficDrift, cfg.DiurnalDrift, cfg.PriceDrift, cfg.OutageRate = 0, 0, 0, 0
	cfg.Pipeline = ScenarioOptions{
		MeasureSeed:  2,
		TrafficSeed:  3,
		Campaign:     CampaignConfig{Duration: 6 * 24 * time.Hour, PCHRounds: 3, RIPERounds: 3},
		Intervals:    96,
		CoverageIXPs: 3,
		GreedyIXPs:   8,
	}
	ctx := context.Background()

	coldStart := time.Now()
	eng, err := NewTickEngine(ctx, w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	cold := time.Since(coldStart)

	// Each iteration advances several ticks so the per-tick figure
	// averages over which exchange the churn lands on — a single tick's
	// cost swings with the chosen IXP's size.
	const ticksPerOp = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < ticksPerOp; k++ {
			if _, err := eng.Advance(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()

	perTick := b.Elapsed() / time.Duration(b.N*ticksPerOp)
	b.ReportMetric(perTick.Seconds()*1e3, "tick_ms")
	b.ReportMetric(cold.Seconds()*1e3, "cold_ms")
	b.ReportMetric(float64(cold)/float64(perTick), "cold_over_tick_x")
	if perTick >= cold/2 {
		b.Errorf("churn-only tick costs %v vs %v cold — the stage-reuse path is not paying", perTick, cold)
	}
}

// BenchmarkJournalReplay measures recovery speed: rebuilding an evolved
// world from its genesis recipe and journalled event records alone
// (world-only replay, one closing evaluation), the path Open takes for
// the tail past the newest checkpoint. Setup advances a journalled
// timeline once; each iteration replays the whole record set to the
// byte-identical final state.
func BenchmarkJournalReplay(b *testing.B) {
	const ticks = 8
	w, err := GenerateWorld(WorldConfig{Seed: 5, LeafNetworks: 1500})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultTickConfig()
	cfg.Seed = 7
	cfg.OutageRate = 0.2
	cfg.Pipeline = ScenarioOptions{
		MeasureSeed:  2,
		TrafficSeed:  3,
		Campaign:     CampaignConfig{Duration: 6 * 24 * time.Hour, PCHRounds: 3, RIPERounds: 3},
		Intervals:    96,
		CoverageIXPs: 3,
		GreedyIXPs:   8,
	}
	cfg.CheckpointEvery = ticks + 1 // force pure journal replay, no checkpoint shortcut
	ctx := context.Background()
	dir := b.TempDir()
	eng, err := OpenTickEngine(ctx, dir, w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.AdvanceTo(ctx, ticks); err != nil {
		b.Fatal(err)
	}
	want := eng.Metrics()
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
	contents, err := ReadJournal(filepath.Join(dir, "journal.rpj"))
	if err != nil {
		b.Fatal(err)
	}

	var events int
	for _, r := range contents.Records {
		events += len(r.Events)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := ReplayTicks(ctx, w, cfg, contents.Records, false)
		if err != nil {
			b.Fatal(err)
		}
		if re.Tick() != ticks || re.Metrics() != want {
			b.Fatal("replay diverged from the live run")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ticks), "ticks")
	b.ReportMetric(float64(events), "events")
}
